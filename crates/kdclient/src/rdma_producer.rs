//! The KafkaDirect RDMA producer (§4.2.2, Fig 3).
//!
//! * **Exclusive mode**: the producer owns the head file and writes records
//!   contiguously with WriteWithImm; the immediate data carries the file ID
//!   (Fig 4). One round trip per produce.
//! * **Shared mode**: before writing, the producer fetches-and-adds the
//!   64-bit order/offset word (Fig 5) to reserve a region and take an order
//!   number; overflowing reservations are detected from the FAA result and
//!   trigger a head-file re-request.
//!
//! Acks arrive as small Sends from the broker, strictly in write order per
//! QP, so a FIFO of pending completions suffices for correlation.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;
use std::time::Duration;

use kdstorage::record::BatchBuilder;
use kdstorage::Record;
use kdwire::messages::{ProduceMode, Request, Response};
use kdwire::{unpack_shared_word, BrokerAddr, ErrorCode, ProduceAccessResp};
use netsim::profile::copy_time;
use netsim::NodeHandle;
use rnic::{CqOpcode, QpOptions, QueuePair, RNic, RecvWr, SendWr, ShmBuf, WorkRequest};
use sim::sync::oneshot;

use crate::conn::{ClientTransport, Conn};
use crate::error::{check, ClientError};

const ACK_BUF: usize = 16;
/// Default ack receive depth. Fan-in sweeps with tens of thousands of
/// simulated producers shrink this via [`RdmaProducer::connect_with_ack_depth`]
/// — each pre-posted ack buffer costs real host memory per client.
const ACK_DEPTH: usize = 512;

/// Bounded reconnect policy: attempts are spaced by exponential backoff so
/// a producer rides out a broker restart without hammering the fabric, and
/// gives up with [`ClientError::RetriesExhausted`] if the outage persists.
const RECONNECT_ATTEMPTS: u32 = 12;
const RECONNECT_BASE: Duration = Duration::from_micros(200);
const RECONNECT_MAX: Duration = Duration::from_millis(10);

/// A pending produce ack: the waiter plus the staging buffer to recycle
/// once the write is acknowledged (acks arrive strictly in write order, so
/// by then the WriteImm has long since consumed the bytes).
type AckWaiter = (oneshot::Sender<(ErrorCode, u64)>, Option<ShmBuf>);

/// Free staging buffers, shared between the producer and its ack reader.
type StagePool = Rc<RefCell<Vec<ShmBuf>>>;

/// The RDMA producer.
pub struct RdmaProducer {
    node: NodeHandle,
    broker: BrokerAddr,
    /// First broker we ever dialled; reconnects re-resolve the partition
    /// leader through it (a failover may have moved leadership).
    bootstrap: BrokerAddr,
    ctrl: Conn,
    nic: RNic,
    qp: QueuePair,
    qp_send_cq: rnic::CompletionQueue,
    topic: String,
    partition: u32,
    mode: ProduceMode,
    grant: ProduceAccessResp,
    /// Exclusive mode: next write position (producer-tracked).
    write_pos: u32,
    pending: Rc<RefCell<VecDeque<AckWaiter>>>,
    /// Recycled staging buffers (see [`RdmaProducer::stage`]).
    stage_pool: StagePool,
    /// Reusable batch encoder; reset per record.
    builder: BatchBuilder,
    /// Chain-path scratch (staged records, work requests): recycled across
    /// `send_pipelined_chain` calls so posting a chain allocates nothing.
    chain_staged: Vec<(ShmBuf, kdtelem::TraceSpan)>,
    chain_wrs: Vec<SendWr>,
    faa_result: ShmBuf,
    /// Ack receive buffers posted per data-plane QP (see `ACK_DEPTH`).
    ack_depth: usize,
    dead: Rc<std::cell::Cell<bool>>,
    telem: kdtelem::Registry,
    /// End-to-end produce latency (record handed to `send` → ack delivered).
    e2e_ns: kdtelem::Histogram,
}

impl RdmaProducer {
    /// Connects the control plane, requests produce access, and establishes
    /// the data-plane QP.
    pub async fn connect(
        node: &NodeHandle,
        broker: BrokerAddr,
        topic: &str,
        partition: u32,
        shared: bool,
    ) -> Result<RdmaProducer, ClientError> {
        Self::connect_with_ack_depth(node, broker, topic, partition, shared, ACK_DEPTH).await
    }

    /// [`RdmaProducer::connect`] with an explicit ack receive depth. The
    /// depth bounds how many produce writes may be in flight before acks
    /// stall the pipeline; large fan-in sweeps use a small depth so 100k
    /// simulated clients don't each pin 512 ack buffers.
    pub async fn connect_with_ack_depth(
        node: &NodeHandle,
        broker: BrokerAddr,
        topic: &str,
        partition: u32,
        shared: bool,
        ack_depth: usize,
    ) -> Result<RdmaProducer, ClientError> {
        assert!(ack_depth >= 1);
        let ctrl = Conn::connect(node, broker, ClientTransport::Tcp).await?;
        let mode = if shared {
            ProduceMode::Shared
        } else {
            ProduceMode::Exclusive
        };
        let nic = RNic::new(node);
        let pending: Rc<RefCell<VecDeque<AckWaiter>>> = Rc::new(RefCell::new(VecDeque::new()));
        let stage_pool: StagePool = Rc::new(RefCell::new(Vec::new()));
        let dead = Rc::new(std::cell::Cell::new(false));
        let (qp, send_cq) = Self::setup_data_plane(
            node,
            &nic,
            broker,
            Rc::clone(&pending),
            Rc::clone(&stage_pool),
            Rc::clone(&dead),
            ack_depth,
        )
        .await?;
        let telem = kdtelem::current();
        let e2e_ns = telem.histogram("kdclient", "produce.e2e_ns");
        let producer_id = sim::rng::range_u64(1..u64::MAX);
        let mut producer = RdmaProducer {
            node: node.clone(),
            broker,
            bootstrap: broker,
            ctrl,
            nic,
            qp,
            qp_send_cq: send_cq,
            topic: topic.to_string(),
            partition,
            mode,
            grant: empty_grant(),
            write_pos: 0,
            pending,
            stage_pool,
            builder: BatchBuilder::new(producer_id),
            chain_staged: Vec::new(),
            chain_wrs: Vec::new(),
            faa_result: ShmBuf::zeroed(8),
            ack_depth,
            dead,
            telem,
            e2e_ns,
        };
        producer.acquire_access(0).await?;
        Ok(producer)
    }

    /// Creates the data-plane QP and its ack reader task. Used at connect
    /// time and again when a revoked session broke the previous QP.
    async fn setup_data_plane(
        node: &NodeHandle,
        nic: &RNic,
        broker: BrokerAddr,
        pending: Rc<RefCell<VecDeque<AckWaiter>>>,
        stage_pool: StagePool,
        dead: Rc<std::cell::Cell<bool>>,
        ack_depth: usize,
    ) -> Result<(QueuePair, rnic::CompletionQueue), ClientError> {
        let send_cq = nic.create_cq(4096);
        let recv_cq = nic.create_cq(ack_depth * 2);
        let qp = nic
            .connect(
                netsim::NodeId(broker.node),
                broker.rdma_port, // PRODUCE_PORT_OFF
                send_cq.clone(),
                recv_cq.clone(),
                QpOptions::default(),
            )
            .await
            .map_err(|_| ClientError::Disconnected)?;
        // Ack receive buffers + reader task: acks resolve pending waiters
        // strictly FIFO (RC ordering guarantees this matches write order).
        let bufs: Vec<ShmBuf> = (0..ack_depth).map(|_| ShmBuf::zeroed(ACK_BUF)).collect();
        for (i, buf) in bufs.iter().enumerate() {
            let _ = qp.post_recv(RecvWr {
                wr_id: i as u64,
                buf: Some(buf.as_slice()),
            });
        }
        {
            let qp = qp.clone();
            let wakeup = node.profile().cpu.wakeup;
            sim::spawn(async move {
                // Acks drain in stack-space batches (`ibv_poll_cq` style):
                // one wakeup retires every ack that piled up, and the
                // consumed recvs go back through one chained post.
                let mut batch: kdbuf::ArrayVec<rnic::Cqe, 64> = kdbuf::ArrayVec::new();
                let mut recycle: kdbuf::ArrayVec<u64, 64> = kdbuf::ArrayVec::new();
                'conn: loop {
                    batch.clear();
                    if recv_cq.poll_batch(&mut batch) == 0 {
                        let Some(c) = recv_cq.next().await else { break };
                        // Blocking-poll wakeup (§5.1 client overheads).
                        sim::time::sleep(wakeup).await;
                        let _ = batch.push(c);
                        recv_cq.poll_batch(&mut batch);
                    }
                    recycle.clear();
                    for cqe in batch.as_slice() {
                        if !cqe.ok() || cqe.opcode != CqOpcode::Recv {
                            break 'conn;
                        }
                        // Decode through a stack buffer: the ack path
                        // allocates nothing at steady state.
                        let n = (cqe.byte_len as usize).min(ACK_BUF);
                        let mut payload = [0u8; ACK_BUF];
                        bufs[cqe.wr_id as usize].read_into(0, &mut payload[..n]);
                        let _ = recycle.push(cqe.wr_id);
                        let (error, base_offset) = kdbroker_ack_decode(&payload[..n]);
                        if let Some((waiter, staged)) = pending.borrow_mut().pop_front() {
                            // The acked write has consumed its staging
                            // buffer; recycle it for a future produce.
                            if let Some(buf) = staged {
                                stage_pool.borrow_mut().push(buf);
                            }
                            let _ = waiter.send((error, base_offset));
                        }
                    }
                    let _ = qp.post_recv_list(recycle.drain().map(|wr_id| RecvWr {
                        wr_id,
                        buf: Some(bufs[wr_id as usize].as_slice()),
                    }));
                }
                dead.set(true);
                // Fail anything still pending.
                for (w, _) in pending.borrow_mut().drain(..) {
                    let _ = w.send((ErrorCode::Internal, 0));
                }
            });
        }
        Ok((qp, send_cq))
    }

    /// Requests (or re-requests) produce access; `min_bytes` forces a roll
    /// when the head cannot fit the next record (§4.2.2).
    async fn acquire_access(&mut self, min_bytes: u32) -> Result<(), ClientError> {
        let resp = self
            .ctrl
            .call(&Request::ProduceAccess {
                topic: self.topic.clone(),
                partition: self.partition,
                mode: self.mode,
                min_bytes,
            })
            .await?;
        let grant = match resp {
            Response::ProduceAccess(g) => g,
            _ => return Err(ClientError::Protocol),
        };
        check(grant.error)?;
        self.write_pos = grant.write_pos;
        self.grant = grant;
        Ok(())
    }

    /// Encodes `record` into a batch in a (registered) staging buffer —
    /// the producer's defensive copy of user data (§5.1). Staging buffers
    /// are recycled through [`StagePool`] as acks retire them, so the
    /// steady-state produce path allocates nothing here.
    /// Encodes `record` into a pooled staging buffer without charging the
    /// copy cost (the caller owes `producer_copy_base` + `copy_time` for
    /// the returned length).
    fn stage_bytes(&mut self, record: &Record) -> Result<ShmBuf, ClientError> {
        self.builder.reset();
        self.builder.append(record);
        let staged = self
            .stage_pool
            .borrow_mut()
            .pop()
            .unwrap_or_else(|| ShmBuf::from_vec(Vec::new()));
        {
            let shared = staged.shared();
            let mut v = shared.borrow_mut();
            v.clear();
            self.builder
                .build_into(&mut v)
                .map_err(|_| ClientError::Corrupt)?;
        }
        Ok(staged)
    }

    async fn stage(&mut self, record: &Record) -> Result<ShmBuf, ClientError> {
        let staged = self.stage_bytes(record)?;
        let cpu = &self.node.profile().cpu;
        // Only the defensive copy occupies the caller; the API→network
        // thread handoff is pipeline latency and is charged on the ack path.
        sim::time::sleep(
            cpu.producer_copy_base + copy_time(staged.len() as u64, cpu.memcpy_bandwidth),
        )
        .await;
        Ok(staged)
    }

    /// Produces one record, waiting for the broker acknowledgment; returns
    /// the assigned base offset.
    pub async fn send(&mut self, record: &Record) -> Result<u64, ClientError> {
        let start = sim::now();
        // The produce span itself is opened by `send_pipelined` (it roots
        // the trace lifeline there, where the WRs are posted).
        let ack = self.send_pipelined(record).await?;
        let (error, offset) = ack.await.map_err(|_| ClientError::Disconnected)?;
        // Dispatch chain: API→net handoff on send + CQ poller→API handoff +
        // wakeup on the ack (§5.1's client-side overheads).
        let cpu = &self.node.profile().cpu;
        sim::time::sleep(cpu.handoff + cpu.handoff + cpu.wakeup).await;
        self.e2e_ns.record_since(start);
        check(error)?;
        Ok(offset)
    }

    /// Posts one produce and returns a future resolving with its ack —
    /// the pipelined path used by the bandwidth experiments.
    pub async fn send_pipelined(
        &mut self,
        record: &Record,
    ) -> Result<oneshot::Receiver<(ErrorCode, u64)>, ClientError> {
        // Root of this produce's lifeline: the ctx rides the data-plane WRs
        // (FAA + WriteImm) to the broker, so the whole commit chain is
        // stitched to this client span.
        let span = self.telem.trace_span("client.produce", None);
        let ctx = Some(span.ctx());
        let staged = self.stage(record).await?;
        let len = staged.len() as u32;
        for attempt in 0..4 {
            if self.dead.get() && self.reconnect_data_plane().await.is_err() {
                // The broker itself is gone (crash or failover): full
                // reconnect through the bootstrap broker.
                self.reconnect().await?;
            }
            let result = match self.mode {
                ProduceMode::Shared => self.try_send_shared(&staged, len, ctx).await,
                _ => self.try_send_exclusive(&staged, len, ctx).await,
            };
            match result {
                Ok(rx) => return Ok(rx),
                Err(NeedAccess) => {
                    // Out of space (or revoked): wait out our own pipeline,
                    // then re-request the head file (§4.2.2).
                    self.drain_pending().await;
                    match self.acquire_access(len).await {
                        Ok(()) => {}
                        // Leadership moved (epoch fenced us out) or the
                        // broker died under us: re-resolve and redial.
                        Err(ClientError::Disconnected)
                        | Err(ClientError::Broker(ErrorCode::FencedEpoch))
                        | Err(ClientError::Broker(ErrorCode::NotLeader)) => {
                            self.reconnect().await?;
                        }
                        Err(e) => return Err(e),
                    }
                    let _ = attempt;
                }
            }
        }
        Err(ClientError::RetriesExhausted)
    }

    /// Posts a run of records as one linked WR chain (an `ibv_post_send`
    /// postlist): every record is staged first, then all WriteImm WRs ride
    /// a single doorbell. Ack receivers are appended to `out` in record
    /// order. Shared mode falls back to per-record posting — a shared write
    /// cannot post before its FAA reservation returns — as do single
    /// records and any run the head file cannot take whole.
    pub async fn send_pipelined_chain(
        &mut self,
        records: &[Record],
        out: &mut Vec<oneshot::Receiver<(ErrorCode, u64)>>,
    ) -> Result<(), ClientError> {
        if records.len() <= 1 || self.mode == ProduceMode::Shared || self.dead.get() {
            for r in records {
                out.push(self.send_pipelined(r).await?);
            }
            return Ok(());
        }
        // Stage every record (the per-record defensive copy), rooting each
        // produce's lifeline exactly as `send_pipelined` does. The staging
        // list is producer-owned scratch, recycled across chains.
        let mut staged = std::mem::take(&mut self.chain_staged);
        staged.clear();
        let mut total = 0u64;
        for r in records {
            let span = self.telem.trace_span("client.produce", None);
            let buf = match self.stage_bytes(r) {
                Ok(buf) => buf,
                Err(e) => {
                    let mut pool = self.stage_pool.borrow_mut();
                    for (buf, _) in staged.drain(..) {
                        pool.push(buf);
                    }
                    drop(pool);
                    self.chain_staged = staged;
                    return Err(e);
                }
            };
            total += buf.len() as u64;
            staged.push((buf, span));
        }
        // The defensive copies run back to back: one per-record base charge
        // each, but a single timer suspension for the whole chain.
        {
            let cpu = &self.node.profile().cpu;
            sim::time::sleep(
                cpu.producer_copy_base * records.len() as u32
                    + copy_time(total, cpu.memcpy_bandwidth),
            )
            .await;
        }
        // All-or-nothing: if the head file cannot take the whole chain (or
        // the QP died while staging), recycle the buffers and let the
        // per-record path re-request access where it needs to.
        if self.dead.get() || u64::from(self.write_pos) + total > self.grant.region.len {
            {
                let mut pool = self.stage_pool.borrow_mut();
                for (buf, _) in staged.drain(..) {
                    pool.push(buf);
                }
            }
            self.chain_staged = staged;
            for r in records {
                out.push(self.send_pipelined(r).await?);
            }
            return Ok(());
        }
        let first = out.len();
        let pos0 = self.write_pos;
        let mut wrs = std::mem::take(&mut self.chain_wrs);
        wrs.clear();
        for (buf, span) in &staged {
            let len = buf.len() as u32;
            let (tx, rx) = oneshot::channel();
            self.pending.borrow_mut().push_back((tx, Some(buf.clone())));
            wrs.push(
                SendWr::unsignaled(
                    0,
                    WorkRequest::WriteImm {
                        local: buf.as_slice(),
                        remote_addr: self.grant.region.addr + u64::from(self.write_pos),
                        rkey: self.grant.region.rkey,
                        imm: kdwire::pack_imm(self.grant.file_id, 0),
                    },
                )
                .with_trace(Some(span.ctx())),
            );
            self.write_pos += len;
            out.push(rx);
        }
        let posted = self.qp.post_send_list(wrs.drain(..));
        self.chain_wrs = wrs;
        if posted.is_err() {
            // Nothing was posted (the post fails whole): unwind the waiters
            // and retry record by record, which reconnects as needed.
            self.write_pos = pos0;
            out.truncate(first);
            {
                let mut pending = self.pending.borrow_mut();
                let mut pool = self.stage_pool.borrow_mut();
                for (buf, _) in staged.drain(..) {
                    pending.pop_back();
                    pool.push(buf);
                }
            }
            self.chain_staged = staged;
            for r in records {
                out.push(self.send_pipelined(r).await?);
            }
            return Ok(());
        }
        staged.clear();
        self.chain_staged = staged;
        Ok(())
    }

    /// Exclusive produce: one WriteWithImm at the producer-tracked position.
    async fn try_send_exclusive(
        &mut self,
        staged: &ShmBuf,
        len: u32,
        trace: Option<kdtelem::TraceCtx>,
    ) -> Result<oneshot::Receiver<(ErrorCode, u64)>, NeedAccess> {
        if u64::from(self.write_pos) + u64::from(len) > self.grant.region.len {
            return Err(NeedAccess);
        }
        let (tx, rx) = oneshot::channel();
        self.pending
            .borrow_mut()
            .push_back((tx, Some(staged.clone())));
        let wr = SendWr::unsignaled(
            0,
            WorkRequest::WriteImm {
                local: staged.as_slice(),
                remote_addr: self.grant.region.addr + u64::from(self.write_pos),
                rkey: self.grant.region.rkey,
                imm: kdwire::pack_imm(self.grant.file_id, 0),
            },
        )
        .with_trace(trace);
        if self.qp.post_send(wr).is_err() {
            self.pending.borrow_mut().pop_back();
            return Err(NeedAccess);
        }
        self.write_pos += len;
        Ok(rx)
    }

    /// Shared produce: FAA the order/offset word, then WriteWithImm into the
    /// reserved region with the order in the immediate data.
    async fn try_send_shared(
        &mut self,
        staged: &ShmBuf,
        len: u32,
        trace: Option<kdtelem::TraceCtx>,
    ) -> Result<oneshot::Receiver<(ErrorCode, u64)>, NeedAccess> {
        let word = self.grant.shared_word.ok_or(NeedAccess)?;
        // Reserve: FAA always succeeds (§4.2.2); overflow shows in the
        // returned offset.
        let old = self.faa(word.addr, word.rkey, len, trace).await?;
        let w = unpack_shared_word(old);
        if w.offset + u64::from(len) > self.grant.region.len {
            return Err(NeedAccess);
        }
        let (tx, rx) = oneshot::channel();
        self.pending
            .borrow_mut()
            .push_back((tx, Some(staged.clone())));
        let wr = SendWr::unsignaled(
            0,
            WorkRequest::WriteImm {
                local: staged.as_slice(),
                remote_addr: self.grant.region.addr + w.offset,
                rkey: self.grant.region.rkey,
                imm: kdwire::pack_imm(self.grant.file_id, w.order),
            },
        )
        .with_trace(trace);
        if self.qp.post_send(wr).is_err() {
            self.pending.borrow_mut().pop_back();
            return Err(NeedAccess);
        }
        Ok(rx)
    }

    async fn faa(
        &self,
        addr: u64,
        rkey: u32,
        len: u32,
        trace: Option<kdtelem::TraceCtx>,
    ) -> Result<u64, NeedAccess> {
        let wr = SendWr::new(
            1,
            WorkRequest::FetchAdd {
                local: self.faa_result.as_slice(),
                remote_addr: addr,
                rkey,
                add: kdwire::slots::shared_word_addend(u64::from(len)),
            },
        )
        .with_trace(trace);
        if self.qp.post_send(wr).is_err() {
            return Err(NeedAccess);
        }
        // FAAs are the only signaled WRs on this QP: the next send
        // completion is ours.
        loop {
            let Some(cqe) = self.send_cq().next().await else {
                return Err(NeedAccess);
            };
            if cqe.opcode == CqOpcode::FetchAdd {
                if !cqe.ok() {
                    return Err(NeedAccess);
                }
                return cqe.atomic_old.ok_or(NeedAccess);
            }
            if !cqe.ok() {
                return Err(NeedAccess);
            }
        }
    }

    fn send_cq(&self) -> rnic::CompletionQueue {
        self.qp_send_cq.clone()
    }

    /// Waits until every in-flight produce is acknowledged (used before
    /// re-requesting access so error acks don't interleave with new writes).
    pub async fn drain_pending(&self) {
        while !self.pending.borrow().is_empty() && !self.dead.get() {
            sim::time::yield_now().await;
            sim::time::sleep(std::time::Duration::from_micros(1)).await;
        }
    }

    /// Full reconnect after a broker crash or epoch-fenced failover:
    /// re-resolves the partition leader through the bootstrap broker (a
    /// failover moves it), rebuilds the control and data planes against the
    /// current leader, and re-acquires produce access. Attempts are bounded
    /// and exponentially backed off so a producer rides out a broker
    /// restart but fails cleanly if the outage outlasts the budget.
    pub async fn reconnect(&mut self) -> Result<(), ClientError> {
        let mut delay = RECONNECT_BASE;
        for _ in 0..RECONNECT_ATTEMPTS {
            if self.try_reconnect().await.is_ok() {
                return Ok(());
            }
            sim::time::sleep(delay).await;
            delay = (delay * 2).min(RECONNECT_MAX);
        }
        Err(ClientError::RetriesExhausted)
    }

    async fn try_reconnect(&mut self) -> Result<(), ClientError> {
        // Drop the stale data plane first so the (old) broker sees the
        // disconnect and releases any grant still held by this producer.
        self.qp.close();
        self.dead.set(true);
        let boot = Conn::connect(&self.node, self.bootstrap, ClientTransport::Tcp).await?;
        let resp = boot
            .call(&Request::Metadata {
                topics: vec![self.topic.clone()],
            })
            .await?;
        let leader = match resp {
            Response::Metadata { error, topics, .. } => {
                check(error)?;
                topics
                    .iter()
                    .find(|t| t.name == self.topic)
                    .and_then(|t| t.partitions.iter().find(|p| p.partition == self.partition))
                    .map(|p| p.leader)
                    .ok_or(ClientError::Broker(ErrorCode::UnknownTopicOrPartition))?
            }
            _ => return Err(ClientError::Protocol),
        };
        let ctrl = if leader.node == self.bootstrap.node {
            boot
        } else {
            Conn::connect(&self.node, leader, ClientTransport::Tcp).await?
        };
        self.pending.borrow_mut().clear();
        let (qp, send_cq) = Self::setup_data_plane(
            &self.node,
            &self.nic,
            leader,
            Rc::clone(&self.pending),
            Rc::clone(&self.stage_pool),
            Rc::clone(&self.dead),
            self.ack_depth,
        )
        .await?;
        self.ctrl = ctrl;
        self.broker = leader;
        self.qp = qp;
        self.qp_send_cq = send_cq;
        self.dead.set(false);
        self.acquire_access(0).await
    }

    async fn reconnect_data_plane(&mut self) -> Result<(), ClientError> {
        // The old reader already failed anything pending.
        self.pending.borrow_mut().clear();
        let (qp, send_cq) = Self::setup_data_plane(
            &self.node,
            &self.nic,
            self.broker,
            Rc::clone(&self.pending),
            Rc::clone(&self.stage_pool),
            Rc::clone(&self.dead),
            self.ack_depth,
        )
        .await?;
        self.qp = qp;
        self.qp_send_cq = send_cq;
        self.dead.set(false);
        Ok(())
    }

    /// Current file-id / segment of the grant (diagnostics).
    pub fn grant(&self) -> &ProduceAccessResp {
        &self.grant
    }

    /// Simulates a client crash: tears the data-plane QP down without any
    /// release protocol. The broker observes the disconnect and revokes the
    /// grant (§4.2.2 failure handling).
    pub fn crash(&self) {
        self.qp.close();
        self.dead.set(true);
    }

    /// Failure-injection helper (shared mode): reserves `len` bytes through
    /// the FAA word but never writes them — the "hole" of §4.2.2 that the
    /// broker's order timeout must detect and abort.
    pub async fn poison_reservation(&self, len: u32) {
        if let Some(word) = self.grant.shared_word {
            let _ = self.faa(word.addr, word.rkey, len, None).await;
        }
    }
}

/// Internal marker: the producer must (re)acquire access.
struct NeedAccess;

fn empty_grant() -> ProduceAccessResp {
    ProduceAccessResp {
        error: ErrorCode::None,
        file_id: 0,
        segment: 0,
        region: kdwire::RemoteRegion {
            addr: 0,
            rkey: 0,
            len: 0,
        },
        write_pos: 0,
        next_offset: 0,
        shared_word: None,
        credits: 0,
    }
}

/// Decodes the broker's 9-byte ack payload.
fn kdbroker_ack_decode(bytes: &[u8]) -> (ErrorCode, u64) {
    let error = match bytes.first().copied().unwrap_or(9) {
        0 => ErrorCode::None,
        1 => ErrorCode::UnknownTopicOrPartition,
        2 => ErrorCode::NotLeader,
        3 => ErrorCode::CorruptBatch,
        4 => ErrorCode::AccessDenied,
        5 => ErrorCode::OutOfSpace,
        6 => ErrorCode::InvalidRequest,
        7 => ErrorCode::AlreadyExists,
        8 => ErrorCode::OrderTimeout,
        10 => ErrorCode::FencedEpoch,
        _ => ErrorCode::Internal,
    };
    let base_offset = bytes
        .get(1..9)
        .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
        .unwrap_or(0);
    (error, base_offset)
}
