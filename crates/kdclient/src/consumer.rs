//! The original Kafka consumer (§4.4.1): periodic fetch requests,
//! regardless of data availability — the CPU burden §5.3 quantifies.

use kdstorage::record::{decode_batch, peek_total_len, RecordView};
use kdwire::{BrokerAddr, Request, Response};
use netsim::profile::copy_time;
use netsim::NodeHandle;

use crate::conn::{ClientTransport, Conn};
use crate::error::{check, ClientError};

/// A fetch-polling consumer bound to one topic partition.
pub struct TcpConsumer {
    node: NodeHandle,
    conn: Conn,
    topic: String,
    partition: u32,
    /// Next record offset to deliver.
    pub offset: u64,
    pub max_bytes: u32,
    /// Telemetry: fetches issued / empty responses.
    pub fetches: u64,
    pub empty_fetches: u64,
    telem: kdtelem::Registry,
    /// End-to-end fetch latency of data-carrying polls (instrument name
    /// shared with the RDMA consumer for transport comparisons).
    fetch_e2e_ns: kdtelem::Histogram,
}

impl TcpConsumer {
    pub async fn connect(
        node: &NodeHandle,
        broker: BrokerAddr,
        transport: ClientTransport,
        topic: &str,
        partition: u32,
        offset: u64,
    ) -> Result<TcpConsumer, ClientError> {
        let conn = Conn::connect(node, broker, transport).await?;
        let telem = kdtelem::current();
        let fetch_e2e_ns = telem.histogram("kdclient", "fetch.e2e_ns");
        Ok(TcpConsumer {
            node: node.clone(),
            conn,
            topic: topic.to_string(),
            partition,
            offset,
            max_bytes: 1024 * 1024,
            fetches: 0,
            empty_fetches: 0,
            telem,
            fetch_e2e_ns,
        })
    }

    /// Issues one fetch request; returns the decoded records at/after the
    /// current offset (possibly empty).
    pub async fn poll(&mut self) -> Result<Vec<RecordView>, ClientError> {
        let start = sim::now();
        // Root of this fetch's lifeline; the ctx crosses to the broker in
        // the RPC frame header so its FetchServed event lands on this trace.
        let span = self.telem.trace_span("client.fetch", None);
        let cpu = &self.node.profile().cpu;
        sim::time::sleep(cpu.handoff).await;
        self.fetches += 1;
        let resp = self
            .conn
            .call_traced(
                &Request::Fetch {
                    topic: self.topic.clone(),
                    partition: self.partition,
                    offset: self.offset,
                    max_bytes: self.max_bytes,
                    replica_id: u32::MAX,
                },
                Some(span.ctx()),
            )
            .await?;
        sim::time::sleep(cpu.wakeup).await;
        let f = match resp {
            Response::Fetch(f) => f,
            _ => return Err(ClientError::Protocol),
        };
        check(f.error)?;
        if f.bytes.is_empty() {
            self.empty_fetches += 1;
            return Ok(Vec::new());
        }
        // Client-side integrity check + copy into application records.
        sim::time::sleep(
            copy_time(f.bytes.len() as u64, cpu.crc_bandwidth)
                + copy_time(f.bytes.len() as u64, cpu.memcpy_bandwidth),
        )
        .await;
        let mut out = Vec::new();
        let mut at = 0usize;
        while at < f.bytes.len() {
            let total = peek_total_len(&f.bytes[at..]).map_err(|_| ClientError::Corrupt)?;
            let records =
                decode_batch(&f.bytes[at..at + total]).map_err(|_| ClientError::Corrupt)?;
            for rv in records {
                if rv.offset >= self.offset {
                    out.push(rv);
                }
            }
            at += total;
        }
        if let Some(last) = out.last() {
            self.offset = last.offset + 1;
        } else {
            self.offset = f.next_offset.max(self.offset);
        }
        self.fetch_e2e_ns.record_since(start);
        span.end();
        Ok(out)
    }

    /// Polls until at least one record arrives.
    pub async fn next_records(&mut self) -> Result<Vec<RecordView>, ClientError> {
        loop {
            let records = self.poll().await?;
            if !records.is_empty() {
                return Ok(records);
            }
        }
    }
}
