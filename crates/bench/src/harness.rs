//! Shared measurement harnesses for the figure benchmarks.
//!
//! Every figure runs each data point in a **fresh runtime** (deterministic,
//! no cross-contamination) and measures **virtual time**; see DESIGN.md §3.1
//! for why wall-clock time is meaningless here.

use std::collections::VecDeque;

use kafkadirect::{ClusterOptions, Record, SimCluster, SystemKind};
use kdclient::{RdmaConsumer, RdmaProducer, TcpConsumer, TcpProducer};
use kdstorage::LogConfig;

use crate::stats::{goodput_mibps, LatencyStats};

/// How records are produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProducerMode {
    /// Produce RPCs over the system's transport (TCP or OSU Send/Recv).
    Rpc,
    /// Exclusive one-sided RDMA produce (§4.2.2).
    RdmaExclusive,
    /// Shared one-sided RDMA produce via FAA (§4.2.2).
    RdmaShared,
}

/// Parameters of a produce experiment.
#[derive(Debug, Clone)]
pub struct ProduceOpts {
    pub system: SystemKind,
    pub mode: ProducerMode,
    pub record_size: usize,
    /// Records per producer.
    pub records: usize,
    /// Max produce requests in flight per producer (1 = closed loop).
    pub window: usize,
    pub partitions: u32,
    /// Producers; producer *i* targets partition *i % partitions*.
    pub producers: usize,
    pub brokers: usize,
    pub replication: u32,
    pub api_workers: Option<usize>,
    pub segment_size: u32,
    /// Storage backend; `None` = the in-memory default.
    pub storage: Option<kdstorage::StorageConfig>,
    /// Produce-connection receive provisioning; `None` = per-QP default.
    pub conn_mode: Option<kafkadirect::ConnMode>,
}

impl ProduceOpts {
    pub fn new(system: SystemKind, mode: ProducerMode, record_size: usize) -> Self {
        ProduceOpts {
            system,
            mode,
            record_size,
            records: 200,
            window: 1,
            partitions: 1,
            producers: 1,
            brokers: 1,
            replication: 1,
            api_workers: None,
            segment_size: 32 * 1024 * 1024,
            storage: None,
            conn_mode: None,
        }
    }
}

fn cluster_options(opts: &ProduceOpts) -> ClusterOptions {
    ClusterOptions {
        log: LogConfig {
            segment_size: opts.segment_size,
            max_batch_size: 1024 * 1024 + 4096,
        },
        api_workers: opts.api_workers,
        storage: opts.storage.clone(),
        conn_mode: opts.conn_mode,
        ..Default::default()
    }
}

/// A producer of either kind with a uniform async interface.
// One of these exists per bench run; the size gap between variants
// (RdmaProducer carries its staging pool inline) is irrelevant here.
#[allow(clippy::large_enum_variant)]
pub enum AnyProducer {
    Rpc(TcpProducer),
    Rdma(RdmaProducer),
}

impl AnyProducer {
    pub async fn connect(
        system: SystemKind,
        node: &netsim::NodeHandle,
        leader: kdwire::BrokerAddr,
        topic: &str,
        partition: u32,
        mode: ProducerMode,
    ) -> AnyProducer {
        match mode {
            ProducerMode::Rpc => AnyProducer::Rpc(
                TcpProducer::connect(
                    node,
                    leader,
                    system.client_transport(),
                    topic,
                    partition,
                )
                .await
                .expect("rpc producer"),
            ),
            ProducerMode::RdmaExclusive => AnyProducer::Rdma(
                RdmaProducer::connect(node, leader, topic, partition, false)
                    .await
                    .expect("rdma producer"),
            ),
            ProducerMode::RdmaShared => AnyProducer::Rdma(
                RdmaProducer::connect(node, leader, topic, partition, true)
                    .await
                    .expect("shared rdma producer"),
            ),
        }
    }

    pub async fn send(&mut self, record: &Record) -> u64 {
        match self {
            AnyProducer::Rpc(p) => p.send(record).await.expect("produce"),
            AnyProducer::Rdma(p) => p.send(record).await.expect("produce"),
        }
    }

    /// Produces a heterogeneous burst of records with up to `window` in
    /// flight.
    pub async fn send_burst(&mut self, records: &[Record], window: usize) {
        match self {
            AnyProducer::Rpc(p) => {
                let mut inflight: VecDeque<sim::JoinHandle<Result<u64, kdclient::ClientError>>> =
                    VecDeque::new();
                for r in records {
                    if inflight.len() >= window {
                        let _ = inflight.pop_front().unwrap().await.unwrap();
                    }
                    inflight.push_back(p.send_pipelined(r));
                }
                while let Some(h) = inflight.pop_front() {
                    let _ = h.await.unwrap();
                }
            }
            AnyProducer::Rdma(p) => {
                let mut inflight: VecDeque<sim::sync::oneshot::Receiver<(kdwire::ErrorCode, u64)>> =
                    VecDeque::new();
                for r in records {
                    if inflight.len() >= window {
                        let _ = inflight.pop_front().unwrap().await;
                    }
                    if let Ok(rx) = p.send_pipelined(r).await {
                        inflight.push_back(rx);
                    }
                }
                while let Some(rx) = inflight.pop_front() {
                    let _ = rx.await;
                }
            }
        }
    }

    /// Produces `count` records keeping up to `window` in flight; returns
    /// once every ack arrived.
    pub async fn send_windowed(&mut self, record: &Record, count: usize, window: usize) {
        match self {
            AnyProducer::Rpc(p) => {
                let mut inflight: VecDeque<sim::JoinHandle<Result<u64, kdclient::ClientError>>> =
                    VecDeque::new();
                for _ in 0..count {
                    if inflight.len() >= window {
                        inflight.pop_front().unwrap().await.unwrap().expect("produce");
                    }
                    inflight.push_back(p.send_pipelined(record));
                }
                while let Some(h) = inflight.pop_front() {
                    h.await.unwrap().expect("produce");
                }
            }
            AnyProducer::Rdma(p) => {
                // Freed window slots refill as one linked WR chain: when the
                // awaited ack returns, every ack that landed behind it (acks
                // are FIFO per QP) retires too, and the whole freed run is
                // posted with a single doorbell.
                let max_chain = window.min(count).max(1);
                let chunk: Vec<Record> = vec![record.clone(); max_chain];
                let mut inflight: VecDeque<sim::sync::oneshot::Receiver<(kdwire::ErrorCode, u64)>> =
                    VecDeque::new();
                let mut rxs: Vec<sim::sync::oneshot::Receiver<(kdwire::ErrorCode, u64)>> =
                    Vec::new();
                let mut sent = 0usize;
                while sent < count {
                    if inflight.len() >= window {
                        // Retire acks until half the window is free: slots
                        // freed in a burst refill as one long chain instead
                        // of dribbling out one doorbell per ack.
                        while inflight.len() > window / 2 {
                            let (err, _) = inflight.pop_front().unwrap().await.expect("ack");
                            assert!(err.is_ok(), "produce failed: {err:?}");
                        }
                        while let Some(rx) = inflight.front_mut() {
                            let Some(ack) = rx.try_recv() else { break };
                            let (err, _) = ack.expect("ack");
                            assert!(err.is_ok(), "produce failed: {err:?}");
                            inflight.pop_front();
                        }
                    }
                    let free = (window - inflight.len()).min(count - sent).max(1);
                    p.send_pipelined_chain(&chunk[..free], &mut rxs)
                        .await
                        .expect("post");
                    sent += free;
                    inflight.extend(rxs.drain(..));
                }
                while let Some(rx) = inflight.pop_front() {
                    let (err, _) = rx.await.expect("ack");
                    assert!(err.is_ok(), "produce failed: {err:?}");
                }
            }
        }
    }
}

/// Boots a cluster + topic for a produce experiment.
pub async fn setup(opts: &ProduceOpts) -> SimCluster {
    let cluster = SimCluster::start_with(opts.system, opts.brokers, cluster_options(opts));
    cluster
        .create_topic("bench", opts.partitions, opts.replication)
        .await;
    cluster
}

/// Median produce latency in µs (closed loop, one producer) — the Fig 10/14
/// methodology: "a round-trip time measured by a produce client".
pub fn produce_latency_us(opts: &ProduceOpts, samples: usize) -> f64 {
    let opts = opts.clone();
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let cluster = setup(&opts).await;
        let leader = cluster.leader_of("bench", 0).await;
        let node = cluster.add_client_node("client");
        let mut producer =
            AnyProducer::connect(cluster.system, &node, leader, "bench", 0, opts.mode).await;
        let record = Record::value(vec![0xA5u8; opts.record_size]);
        // Warmup.
        for _ in 0..5 {
            producer.send(&record).await;
        }
        let mut stats = LatencyStats::new();
        for _ in 0..samples {
            let t0 = sim::now();
            producer.send(&record).await;
            stats.record(sim::now() - t0);
        }
        stats.median_us()
    })
}

/// Aggregate produce goodput in MiB/s across all producers (pipelined).
pub fn produce_bandwidth_mibps(opts: &ProduceOpts) -> f64 {
    let opts = opts.clone();
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let cluster = setup(&opts).await;
        let mut leaders = Vec::new();
        for p in 0..opts.partitions {
            leaders.push(cluster.leader_of("bench", p).await);
        }
        let t0 = sim::now();
        let mut handles = Vec::new();
        for i in 0..opts.producers {
            let partition = i as u32 % opts.partitions;
            let leader = leaders[partition as usize];
            let node = cluster.add_client_node(&format!("client{i}"));
            let mode = opts.mode;
            let size = opts.record_size;
            let count = opts.records;
            let window = opts.window;
            let system = cluster.system;
            handles.push(sim::spawn(async move {
                let mut producer =
                    AnyProducer::connect(system, &node, leader, "bench", partition, mode).await;
                let record = Record::value(vec![0xA5u8; size]);
                producer.send_windowed(&record, count, window).await;
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        let elapsed = sim::now() - t0;
        let bytes = (opts.producers * opts.records * opts.record_size) as u64;
        goodput_mibps(bytes, elapsed)
    })
}

/// Preloads `count` records then measures the median per-record consume
/// latency (Fig 18 methodology: records preloaded, fetched one by one).
pub fn consume_latency_us(system: SystemKind, record_size: usize, count: usize) -> f64 {
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let opts = ProduceOpts::new(system, preferred_mode(system), record_size);
        let cluster = setup(&opts).await;
        let leader = cluster.leader_of("bench", 0).await;
        let node = cluster.add_client_node("client");
        preload(&cluster, &node, leader, record_size, count).await;

        let mut stats = LatencyStats::new();
        if system.rdma_consume() {
            let mut consumer = RdmaConsumer::connect(&node, leader, "bench", 0, 0)
                .await
                .expect("consumer");
            // Paper methodology: records are fetched one by one — size the
            // RDMA read to one encoded record.
            consumer.fetch_size = (record_size + 96) as u32;
            let mut seen = 0;
            while seen < count {
                let t0 = sim::now();
                let records = consumer.poll().await.expect("poll");
                if records.is_empty() {
                    continue;
                }
                stats.record(sim::now() - t0);
                seen += records.len();
            }
        } else {
            let mut consumer =
                TcpConsumer::connect(&node, leader, system.client_transport(), "bench", 0, 0)
                    .await
                    .expect("consumer");
            // One record per fetch (the paper disables response batching in
            // the bandwidth experiment; for latency it fetches one by one).
            consumer.max_bytes = (record_size + 128) as u32;
            let mut seen = 0;
            while seen < count {
                let t0 = sim::now();
                let records = consumer.poll().await.expect("poll");
                if records.is_empty() {
                    continue;
                }
                stats.record(sim::now() - t0);
                seen += records.len();
            }
        }
        stats.median_us()
    })
}

/// Consume goodput in MiB/s over `count` preloaded records (Fig 20: broker
/// replies with one record per fetch for the TCP systems).
pub fn consume_bandwidth_mibps(system: SystemKind, record_size: usize, count: usize) -> f64 {
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let opts = ProduceOpts::new(system, preferred_mode(system), record_size);
        let cluster = setup(&opts).await;
        let leader = cluster.leader_of("bench", 0).await;
        let node = cluster.add_client_node("client");
        preload(&cluster, &node, leader, record_size, count).await;

        let t0 = sim::now();
        let mut seen = 0usize;
        if system.rdma_consume() {
            let mut consumer = RdmaConsumer::connect(&node, leader, "bench", 0, 0)
                .await
                .expect("consumer");
            consumer.fetch_size = consumer.fetch_size.max((record_size + 128) as u32);
            while seen < count {
                seen += consumer.poll().await.expect("poll").len();
            }
        } else {
            let mut consumer =
                TcpConsumer::connect(&node, leader, system.client_transport(), "bench", 0, 0)
                    .await
                    .expect("consumer");
            consumer.max_bytes = (record_size + 128) as u32; // one record per fetch
            while seen < count {
                seen += consumer.poll().await.expect("poll").len();
            }
        }
        goodput_mibps((count * record_size) as u64, sim::now() - t0)
    })
}

/// Runs a closed-loop produce experiment inside a private telemetry registry
/// and returns the aggregated [`kdtelem::TelemetryReport`] — latency
/// percentiles per broker API, NIC and link counters, client e2e histograms.
pub fn produce_telemetry(opts: &ProduceOpts, samples: usize) -> kdtelem::TelemetryReport {
    let registry = kdtelem::Registry::new();
    let _scope = kdtelem::enter(&registry);
    let _ = produce_latency_us(opts, samples);
    registry.snapshot()
}

/// Prints a telemetry report table when `KD_TELEM=1` is set, so every bench
/// can expose its instrument readings without cluttering default output.
pub fn maybe_print_telemetry(label: &str, report: &kdtelem::TelemetryReport) {
    if std::env::var_os("KD_TELEM").is_some_and(|v| v == "1") {
        println!();
        println!("# telemetry — {label}");
        print!("{}", report.to_table());
    }
}

/// Captures every trace event of one end-to-end produce→fetch run on
/// `system`'s preferred datapaths and returns the drained event log.
pub fn capture_trace(system: SystemKind, record_size: usize, samples: usize) -> Vec<kdtelem::TraceEvent> {
    let registry = kdtelem::Registry::new();
    let _scope = kdtelem::enter(&registry);
    let _ = end_to_end_latency_us(system, record_size, samples);
    registry.drain_trace_events()
}

/// When `KD_TRACE=<path>` is set, records one end-to-end produce→fetch run
/// on `system` and writes its lifelines as Chrome trace-event JSON to
/// `<path>` — load the file in Perfetto (ui.perfetto.dev) or
/// `chrome://tracing` to see client→broker→consumer spans and events.
pub fn maybe_write_trace(label: &str, system: SystemKind) {
    let Some(path) = std::env::var_os("KD_TRACE") else {
        return;
    };
    let events = capture_trace(system, 256, 4);
    let json = kdtelem::chrome::to_chrome_json(&events);
    let path = std::path::PathBuf::from(path);
    match std::fs::write(&path, json) {
        Ok(()) => println!(
            "# trace — {label}: wrote {} events to {}",
            events.len(),
            path.display()
        ),
        Err(e) => eprintln!("# trace — {label}: cannot write {}: {e}", path.display()),
    }
}

/// Runs a pipelined produce workload on `system`'s preferred datapath with
/// the virtual-time sampler armed, inside a private telemetry registry, and
/// returns the recorded [`kdtelem::SeriesDump`] — every counter, gauge and
/// histogram sampled on a fixed virtual-time grid.
pub fn capture_series(
    system: SystemKind,
    record_size: usize,
    count: usize,
    interval: std::time::Duration,
) -> kdtelem::SeriesDump {
    let registry = kdtelem::Registry::new();
    let _scope = kdtelem::enter(&registry);
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let log = kdtelem::Sampler::start(
            &kdtelem::current(),
            kdtelem::SeriesOptions {
                interval,
                capacity: 1 << 16,
            },
        );
        let opts = ProduceOpts::new(system, preferred_mode(system), record_size);
        let cluster = setup(&opts).await;
        let leader = cluster.leader_of("bench", 0).await;
        let node = cluster.add_client_node("client");
        let mut producer =
            AnyProducer::connect(cluster.system, &node, leader, "bench", 0, opts.mode).await;
        let record = Record::value(vec![0xA5u8; record_size]);
        producer.send_windowed(&record, count, 16).await;
        log.stop();
        log.dump()
    })
}

/// When `KD_SERIES=<path>` is set, records a sampled produce run on
/// `system` and writes the time-series as JSON lines to `<path>` — render
/// it with `cargo run --release -p bench --bin kdtop -- <path>`.
pub fn maybe_write_series(label: &str, system: SystemKind) {
    let Some(path) = std::env::var_os("KD_SERIES") else {
        return;
    };
    let dump = capture_series(system, 256, 2000, std::time::Duration::from_micros(50));
    let path = std::path::PathBuf::from(path);
    match std::fs::write(&path, dump.to_json_lines()) {
        Ok(()) => println!(
            "# series — {label}: wrote {} samples ({} dropped) to {}",
            dump.samples,
            dump.dropped,
            path.display()
        ),
        Err(e) => eprintln!("# series — {label}: cannot write {}: {e}", path.display()),
    }
}

/// The preferred produce datapath of a system (for preloading data).
pub fn preferred_mode(system: SystemKind) -> ProducerMode {
    if system.rdma_produce() {
        ProducerMode::RdmaExclusive
    } else {
        ProducerMode::Rpc
    }
}

async fn preload(
    cluster: &SimCluster,
    node: &netsim::NodeHandle,
    leader: kdwire::BrokerAddr,
    record_size: usize,
    count: usize,
) {
    let mode = preferred_mode(cluster.system);
    let mut producer = AnyProducer::connect(cluster.system, node, leader, "bench", 0, mode).await;
    let record = Record::value(vec![0x5Au8; record_size]);
    producer.send_windowed(&record, count, 32).await;
}

/// End-to-end latency (Fig 19): one client produces a record then fetches
/// it; per-datapath toggles choose the produce/consume paths.
pub fn end_to_end_latency_us(
    system: SystemKind,
    record_size: usize,
    samples: usize,
) -> f64 {
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let opts = ProduceOpts::new(system, preferred_mode(system), record_size);
        let cluster = setup(&opts).await;
        let leader = cluster.leader_of("bench", 0).await;
        let node = cluster.add_client_node("client");
        let mut producer =
            AnyProducer::connect(cluster.system, &node, leader, "bench", 0, opts.mode).await;
        let record = Record::value(vec![0x11u8; record_size]);

        let mut stats = LatencyStats::new();
        if system.rdma_consume() {
            let mut consumer = RdmaConsumer::connect(&node, leader, "bench", 0, 0)
                .await
                .expect("consumer");
            consumer.fetch_size = consumer.fetch_size.max((record_size + 128) as u32);
            for i in 0..samples {
                let t0 = sim::now();
                producer.send(&record).await;
                let mut got = 0;
                while got == 0 {
                    got = consumer.poll().await.expect("poll").len();
                }
                if i >= 3 {
                    stats.record(sim::now() - t0);
                }
            }
        } else {
            let mut consumer =
                TcpConsumer::connect(&node, leader, system.client_transport(), "bench", 0, 0)
                    .await
                    .expect("consumer");
            for i in 0..samples {
                let t0 = sim::now();
                producer.send(&record).await;
                let mut got = 0;
                while got == 0 {
                    got = consumer.poll().await.expect("poll").len();
                }
                if i >= 3 {
                    stats.record(sim::now() - t0);
                }
            }
        }
        stats.median_us()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_harness_smoke() {
        let opts = ProduceOpts::new(SystemKind::KafkaDirect, ProducerMode::RdmaExclusive, 64);
        let us = produce_latency_us(&opts, 10);
        assert!(us > 10.0 && us < 1000.0, "latency {us}us");
    }

    #[test]
    fn bandwidth_harness_smoke() {
        let mut opts = ProduceOpts::new(SystemKind::Kafka, ProducerMode::Rpc, 1024);
        opts.records = 50;
        opts.window = 16;
        let mibps = produce_bandwidth_mibps(&opts);
        assert!(mibps > 0.1, "bandwidth {mibps}");
    }

    #[test]
    fn e2e_harness_smoke() {
        let us = end_to_end_latency_us(SystemKind::KafkaDirect, 64, 5);
        assert!(us > 10.0 && us < 2000.0, "e2e {us}us");
    }
}
