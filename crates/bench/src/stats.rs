//! Measurement accumulators and table formatting for the figure harnesses.

use std::time::Duration;

/// Collects latency samples (virtual time) and reports percentiles.
#[derive(Default, Clone)]
pub struct LatencyStats {
    samples_us: Vec<f64>,
}

impl LatencyStats {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn record(&mut self, d: Duration) {
        self.samples_us.push(d.as_nanos() as f64 / 1000.0);
    }

    pub fn len(&self) -> usize {
        self.samples_us.len()
    }

    pub fn is_empty(&self) -> bool {
        self.samples_us.is_empty()
    }

    pub fn percentile(&self, p: f64) -> f64 {
        assert!(!self.samples_us.is_empty());
        let mut v = self.samples_us.clone();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let idx = ((v.len() - 1) as f64 * p / 100.0).round() as usize;
        v[idx]
    }

    /// Median in microseconds — the paper's latency metric ("We measure the
    /// median latency", §5.1).
    pub fn median_us(&self) -> f64 {
        self.percentile(50.0)
    }

    pub fn mean_us(&self) -> f64 {
        self.samples_us.iter().sum::<f64>() / self.samples_us.len() as f64
    }

    /// Absorbs another accumulator's samples.
    pub fn merge(&mut self, other: &LatencyStats) {
        self.samples_us.extend_from_slice(&other.samples_us);
    }
}

/// Goodput over a measured interval.
pub fn goodput_mibps(bytes: u64, elapsed: Duration) -> f64 {
    bytes as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0)
}

pub fn goodput_gibps(bytes: u64, elapsed: Duration) -> f64 {
    goodput_mibps(bytes, elapsed) / 1024.0
}

/// Human label for a byte size (the paper's x-axes: 32B ... 128K).
pub fn size_label(bytes: usize) -> String {
    if bytes < 1024 {
        format!("{bytes}B")
    } else if bytes.is_multiple_of(1024 * 1024) {
        format!("{}M", bytes / (1024 * 1024))
    } else {
        format!("{}K", bytes / 1024)
    }
}

/// Aligned-table printer: figures print their series as rows so the output
/// can be diffed against EXPERIMENTS.md.
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            let mut s = String::new();
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    s.push_str("  ");
                }
                s.push_str(&format!("{cell:>w$}"));
            }
            s
        };
        println!("{}", line(&self.header));
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Formats a float with sensible precision for table cells.
pub fn fmt(v: f64) -> String {
    if v >= 1000.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles() {
        let mut s = LatencyStats::new();
        for i in 1..=100u64 {
            s.record(Duration::from_micros(i));
        }
        assert!((s.median_us() - 50.0).abs() <= 1.0);
        assert!((s.percentile(99.0) - 99.0).abs() <= 1.0);
        assert!((s.mean_us() - 50.5).abs() < 0.01);
    }

    #[test]
    fn goodput_math() {
        let g = goodput_mibps(1024 * 1024, Duration::from_secs(1));
        assert!((g - 1.0).abs() < 1e-9);
        assert!((goodput_gibps(1 << 30, Duration::from_secs(1)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn labels() {
        assert_eq!(size_label(32), "32B");
        assert_eq!(size_label(2048), "2K");
        assert_eq!(size_label(1024 * 1024), "1M");
    }
}
