//! Benchmark support for regenerating every table and figure of the paper.
//!
//! * [`stats`] — percentile accumulators, goodput math, table printing.
//! * [`harness`] — full-system measurement drivers (produce/consume/e2e
//!   latency and bandwidth across all three systems).
//! * [`micro`] — raw-fabric microbenchmarks (Figs 6–8: the C/C++
//!   microbenchmarks of §4, here against the simulated verbs).
//!
//! The figure binaries live in `benches/` (run with `cargo bench`); each
//! prints the paper's series as an aligned table.

pub mod harness;
pub mod kdtop;
pub mod micro;
pub mod stats;
