//! kdperf — wall-clock performance harness for the hot datapath.
//!
//! Unlike the figure benchmarks (which report **virtual** time and model the
//! paper's hardware), kdperf measures what the simulator itself costs on the
//! machine running it: records/second of wall-clock throughput, nanoseconds
//! of host CPU per record, executor polls ("events") per second, and — via a
//! counting global allocator — heap allocations per record at steady state.
//!
//! The workload is the Fig 10/11 produce loop: one producer, one broker,
//! replication disabled, windowed pipelining. Three datapaths are measured:
//! exclusive one-sided RDMA produce (KafkaDirect) over the in-memory store,
//! the same loop over the **file-backed tiered store** (the hot tier must
//! not tax the RDMA path), and the TCP baseline (Kafka). A fourth section
//! verifies that a 1 MiB netsim TCP send performs O(1) allocations once the
//! packet pool is warm, and a fifth measures cold-tier fetch throughput
//! (sparse-index file reads of evicted segments) across read sizes.
//!
//! A sixth section sweeps the **sharded parallel simulator** (DESIGN.md
//! §12): 8 independent broker groups × 8 exclusive-RDMA producers each
//! (8 brokers, 64 producer clients) run through
//! `kafkadirect::run_sharded_groups` at each `--shards` count, recording
//! wall-clock, events/s/shard, and per-shard barrier-wait attribution.
//! Speedup over `shards=1` requires as many hardware threads as shards;
//! the report records `hw_threads` so single-core runs are interpretable.
//!
//! Output: a JSON report plus a human-readable summary. Both default paths
//! derive from one PR tag — `BENCH_<TAG>.json` and `results/PERF_<TAG>.md`,
//! where `<TAG>` comes from `--tag` or `KD_BENCH_TAG` (default `PR10`);
//! explicit `--out`/`--summary` still override. Exit status is non-zero if
//! a steady-state budget is exceeded:
//!
//! * exclusive RDMA produce — memory **and** tiered — must stay at
//!   **<= 2 allocs/record**;
//! * exclusive RDMA produce — memory **and** tiered — must stay at
//!   **<= 12 executor polls/record** (the CQ-batching dividend — the PR 4
//!   loop needed ~21);
//! * the warm 1 MiB TCP send must stay under one alloc per MSS packet;
//! * running the virtual-time telemetry sampler must cost **<= 3%** of
//!   exclusive-RDMA records/s (best-of-3 interleaved pairs; the wall-clock
//!   budget is enforced only when the host's measured noise floor — the
//!   spread of identical-config unsampled runs — is at or below the budget;
//!   override with `KDPERF_SAMPLER_BUDGET=<pct>`), and the sampled run must
//!   not allocate beyond its unsampled twin (samples/4 + 256 allowance —
//!   this deterministic half of the contract is gated on every host).
//!
//! The report also carries the broker-side `cqe_batch` histogram (CQEs
//! taken per `ibv_poll_cq`-style drain), the direct measure of how much
//! completion batching the workload achieved.
//!
//! Usage: `kdperf [--smoke] [--records N] [--warmup N] [--window W]
//! [--size BYTES] [--shards LIST] [--tag TAG] [--out PATH] [--summary PATH]`
//!
//! `KDPERF_ATTRIB=<class>[:<nth>]` attributes allocations by power-of-two
//! size class: every allocation in size class `<class>` (i.e. sizes in
//! `[2^class, 2^(class+1))`) is counted, and the `<nth>` such allocation
//! (default 300) of the exclusive-RDMA measured region dumps a backtrace.
//! See EXPERIMENTS.md.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use kafkadirect::shardsim::{run_sharded_groups, scoped, GroupCtx, LocalFuture};
use kafkadirect::{ClusterOptions, Record, SimCluster, SystemKind};
use kdbench::harness::{setup, AnyProducer, ProduceOpts, ProducerMode};
use kdclient::RdmaProducer;

// ---------------------------------------------------------------------------
// Counting allocator.
// ---------------------------------------------------------------------------

/// Wraps the system allocator and counts every allocation (and realloc —
/// growth is a cost even when the block does not move). Deallocations are
/// free and uncounted.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
/// Per-power-of-two size-class counts, for `KDPERF_SIZES=1` diagnostics.
static SIZE_CLASSES: [AtomicU64; 24] = [const { AtomicU64::new(0) }; 24];

/// `KDPERF_ATTRIB` state: the armed size class (`u64::MAX` = off), the
/// ordinal that triggers a backtrace, and the running count of matching
/// allocations inside the armed region.
static ATTRIB_CLASS: AtomicU64 = AtomicU64::new(u64::MAX);
static ATTRIB_NTH: AtomicU64 = AtomicU64::new(300);
static ATTRIB_SEEN: AtomicU64 = AtomicU64::new(0);
thread_local! { static IN_TRAP: std::cell::Cell<bool> = const { std::cell::Cell::new(false) }; }

fn count(size: usize) {
    ALLOCS.fetch_add(1, Relaxed);
    ALLOC_BYTES.fetch_add(size as u64, Relaxed);
    let class = (usize::BITS - size.max(1).leading_zeros() - 1).min(23) as usize;
    SIZE_CLASSES[class].fetch_add(1, Relaxed);
    if class as u64 == ATTRIB_CLASS.load(Relaxed) {
        let n = ATTRIB_SEEN.fetch_add(1, Relaxed) + 1;
        if n == ATTRIB_NTH.load(Relaxed) {
            IN_TRAP.with(|f| {
                // Capturing a backtrace allocates; the guard stops the
                // recursive allocations from re-triggering the trap.
                if !f.get() {
                    f.set(true);
                    eprintln!(
                        "KDPERF_ATTRIB: allocation #{n} of size class {class} ({size}B):\n{}",
                        std::backtrace::Backtrace::force_capture()
                    );
                    f.set(false);
                }
            });
        }
    }
}

/// Parses `KDPERF_ATTRIB=<class>[:<nth>]` (off when unset/invalid). Returns
/// the armed class, if any.
fn attrib_config() -> Option<u64> {
    let raw = std::env::var("KDPERF_ATTRIB").ok()?;
    let (class, nth) = match raw.split_once(':') {
        Some((c, n)) => (c.parse().ok()?, n.parse().ok()?),
        None => (raw.parse().ok()?, 300),
    };
    ATTRIB_NTH.store(nth, Relaxed);
    Some(class)
}

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count(layout.size());
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count(new_size);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn alloc_snapshot() -> (u64, u64) {
    (ALLOCS.load(Relaxed), ALLOC_BYTES.load(Relaxed))
}

// ---------------------------------------------------------------------------
// Configuration.
// ---------------------------------------------------------------------------

#[derive(Clone)]
struct Config {
    records: usize,
    warmup: usize,
    window: usize,
    record_size: usize,
    /// Shard counts for the parallel-simulation sweep.
    shards: Vec<usize>,
    /// Fan-in sweep client-count range (log-spaced points, inclusive).
    fanin_min: usize,
    fanin_max: usize,
    /// PR tag — the single source for both default artifact paths.
    tag: String,
    out: String,
    summary: String,
}

impl Config {
    fn from_args() -> Config {
        let mut cfg = Config {
            records: 4000,
            warmup: 500,
            window: 32,
            record_size: 512,
            shards: vec![1, 2, 4],
            fanin_min: 10,
            fanin_max: 100_000,
            tag: std::env::var("KD_BENCH_TAG").unwrap_or_else(|_| "PR10".to_string()),
            out: String::new(),
            summary: String::new(),
        };
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            let mut take = |name: &str| {
                args.next()
                    .unwrap_or_else(|| panic!("{name} requires a value"))
            };
            match arg.as_str() {
                "--smoke" => {
                    cfg.records = 600;
                    cfg.warmup = 150;
                    // A tiny fan-in smoke: every mode boots and the O(1)
                    // SRQ recv-memory invariant is checked, but every point
                    // stays far below the NIC cache knee, so the throughput
                    // assertions (which need past-knee points) are skipped.
                    cfg.fanin_min = 10;
                    cfg.fanin_max = 100;
                }
                "--records" => cfg.records = take("--records").parse().expect("--records"),
                "--warmup" => cfg.warmup = take("--warmup").parse().expect("--warmup"),
                "--window" => cfg.window = take("--window").parse().expect("--window"),
                "--size" => cfg.record_size = take("--size").parse().expect("--size"),
                "--shards" => {
                    cfg.shards = take("--shards")
                        .split(',')
                        .map(|s| s.trim().parse().expect("--shards takes n1,n2,..."))
                        .collect();
                }
                "--fanin" => {
                    let v = take("--fanin");
                    let (lo, hi) = v
                        .split_once("..")
                        .unwrap_or_else(|| panic!("--fanin takes MIN..MAX, got {v}"));
                    cfg.fanin_min = lo.trim().parse().expect("--fanin MIN");
                    cfg.fanin_max = hi.trim().parse().expect("--fanin MAX");
                    assert!(
                        cfg.fanin_min >= 1 && cfg.fanin_min <= cfg.fanin_max,
                        "--fanin range must satisfy 1 <= MIN <= MAX"
                    );
                }
                "--tag" => cfg.tag = take("--tag"),
                "--out" => cfg.out = take("--out"),
                "--summary" => cfg.summary = take("--summary"),
                other => panic!("unknown argument: {other}"),
            }
        }
        // Artifact naming convention (EXPERIMENTS.md): both defaults derive
        // from the one tag; explicit paths override.
        if cfg.out.is_empty() {
            cfg.out = format!("BENCH_{}.json", cfg.tag);
        }
        if cfg.summary.is_empty() {
            cfg.summary = format!("results/PERF_{}.md", cfg.tag);
        }
        cfg
    }
}

// ---------------------------------------------------------------------------
// Produce-path measurement.
// ---------------------------------------------------------------------------

/// `(utime, stime, minflt, majflt)` from `/proc/self/stat` — poor-man's
/// rusage for attributing wall-clock gaps to user CPU vs syscalls vs paging.
fn proc_stat() -> (u64, u64, u64, u64) {
    let s = std::fs::read_to_string("/proc/self/stat").unwrap_or_default();
    // Fields after the parenthesised comm; stat(5): minflt=10, majflt=12,
    // utime=14, stime=15 (1-based over the whole line).
    let rest = s.rsplit(')').next().unwrap_or("");
    let f: Vec<u64> = rest
        .split_whitespace()
        .map(|x| x.parse().unwrap_or(0))
        .collect();
    let g = |i: usize| f.get(i).copied().unwrap_or(0);
    // After stripping "pid (comm) ", field 1-based index k maps to f[k-3].
    (g(11), g(12), g(7), g(9))
}

struct PathResult {
    label: &'static str,
    records: usize,
    wall_ns: u64,
    virtual_ns: u64,
    polls: u64,
    allocs: u64,
    alloc_bytes: u64,
    /// Broker-side CQEs-per-drain distribution ("kdbroker"/"cq.batch"),
    /// over the whole run (warmup included). Absent on the TCP path.
    cqe_batch: Option<kdtelem::HistStats>,
    /// Time-series samples taken during the run (sampled runs only).
    samples: Option<u64>,
}

impl PathResult {
    fn ns_per_record(&self) -> f64 {
        self.wall_ns as f64 / self.records as f64
    }

    fn records_per_sec(&self) -> f64 {
        self.records as f64 * 1e9 / self.wall_ns.max(1) as f64
    }

    fn events_per_sec(&self) -> f64 {
        self.polls as f64 * 1e9 / self.wall_ns.max(1) as f64
    }

    fn allocs_per_record(&self) -> f64 {
        self.allocs as f64 / self.records as f64
    }

    /// Executor polls charged per measured record — the scheduling-work
    /// analogue of allocs/record, and the number CQ batching drives down.
    fn polls_per_record(&self) -> f64 {
        self.polls as f64 / self.records as f64
    }
}

/// Runs the Fig 10/11 produce loop on one datapath: boots a cluster, warms
/// the pools with `cfg.warmup` records, then measures `cfg.records` more.
/// Warmup and measurement share one runtime so arenas, pools, and rings are
/// hot when the counters start.
fn run_produce(
    label: &'static str,
    system: SystemKind,
    mode: ProducerMode,
    cfg: &Config,
    storage: Option<kdstorage::StorageConfig>,
    conn_mode: Option<kafkadirect::ConnMode>,
    sampler_us: Option<u64>,
) -> PathResult {
    let mut opts = ProduceOpts::new(system, mode, cfg.record_size);
    opts.records = cfg.records;
    opts.window = cfg.window;
    opts.storage = storage;
    opts.conn_mode = conn_mode;
    // Private registry: the brokers' `cqe_batch` histogram lands here.
    let registry = kdtelem::Registry::new();
    let _telem = kdtelem::enter(&registry);
    let rt = sim::Runtime::new();

    let warmup = cfg.warmup;
    let window = cfg.window;
    let size = cfg.record_size;
    let sample_registry = registry.clone();
    let (cluster, producer, record, series) = rt.block_on(async move {
        // The sampler (if armed) runs through warmup + measurement, exactly
        // as a production broker would run it: the overhead gate compares
        // this run's wall-clock throughput against a twin whose sampler is
        // armed with an interval longer than the run (zero ticks fire) —
        // both sides execute identical setup/teardown code, so the delta
        // isolates per-tick sampling work instead of folding in binary
        // code-layout luck between sampled and sampler-free builds.
        let series = sampler_us.map(|us| {
            kdtelem::Sampler::start(
                &sample_registry,
                kdtelem::SeriesOptions {
                    interval: std::time::Duration::from_micros(us),
                    capacity: 1 << 16,
                },
            )
        });
        let cluster = setup(&opts).await;
        let leader = cluster.leader_of("bench", 0).await;
        let node = cluster.add_client_node("perf-client");
        let mut producer =
            AnyProducer::connect(cluster.system, &node, leader, "bench", 0, mode).await;
        let record = Record::value(vec![0xA5u8; size]);
        producer.send_windowed(&record, warmup, window).await;
        (cluster, producer, record, series)
    });

    let (allocs0, bytes0) = alloc_snapshot();
    for c in &SIZE_CLASSES {
        c.store(0, Relaxed);
    }
    let polls0 = rt.poll_count();
    if label == "rdma_exclusive" {
        if let Some(class) = attrib_config() {
            ATTRIB_SEEN.store(0, Relaxed);
            ATTRIB_CLASS.store(class, Relaxed);
        }
    }
    let ru0 = proc_stat();
    let v0 = rt.now();
    let t0 = Instant::now();
    let records = cfg.records;
    let (cluster, producer) = rt.block_on(async move {
        let mut producer = producer;
        producer.send_windowed(&record, records, window).await;
        (cluster, producer)
    });
    let wall_ns = t0.elapsed().as_nanos() as u64;
    if std::env::var_os("KDPERF_RUSAGE").is_some_and(|v| v == "1") {
        let (ut0, st0, mf0, mj0) = ru0;
        let (ut1, st1, mf1, mj1) = proc_stat();
        eprintln!(
            "  [{label}] utime {} ticks, stime {} ticks, minflt {}, majflt {}",
            ut1 - ut0,
            st1 - st0,
            mf1 - mf0,
            mj1 - mj0
        );
    }
    ATTRIB_CLASS.store(u64::MAX, Relaxed);
    let (allocs1, bytes1) = alloc_snapshot();
    if std::env::var_os("KDPERF_SIZES").is_some_and(|v| v == "1") {
        for (class, n) in SIZE_CLASSES.iter().enumerate() {
            let n = n.load(Relaxed);
            if n > 0 {
                eprintln!("  [{label}] size 2^{class:<2} x {n}");
            }
        }
    }
    let polls = rt.poll_count() - polls0;
    let virtual_ns = (rt.now() - v0).as_nanos() as u64;

    let samples = series.as_ref().map(|s| {
        s.stop();
        s.samples()
    });

    // Tear down inside the runtime so connection/broker drops that talk to
    // the fabric run with an active executor.
    rt.block_on(async move {
        drop(producer);
        drop(cluster);
    });

    let cqe_batch = registry
        .snapshot()
        .histograms
        .iter()
        .find(|h| h.component == "kdbroker" && h.name == "cq.batch")
        .map(|h| h.stats);

    PathResult {
        label,
        records,
        wall_ns,
        virtual_ns,
        polls,
        allocs: allocs1 - allocs0,
        alloc_bytes: bytes1 - bytes0,
        cqe_batch,
        samples,
    }
}

// ---------------------------------------------------------------------------
// 1 MiB TCP send allocation check.
// ---------------------------------------------------------------------------

struct TcpSendCheck {
    payload_bytes: usize,
    packets: u64,
    allocs: u64,
}

/// Streams 1 MiB messages across a raw netsim TCP connection and counts the
/// allocations of one warm send (writer + concurrently draining reader).
/// With the pooled packet path this is O(1); the pre-pool code allocated two
/// `Vec`s per MSS packet.
fn run_tcp_1mib() -> TcpSendCheck {
    const PAYLOAD: usize = 1 << 20;
    let rt = sim::Runtime::new();
    let allocs = rt.block_on(async {
        let profile = netsim::profile::Profile::testbed();
        let mss = profile.net.tcp_mss as usize;
        let fabric = netsim::Fabric::new(profile);
        let src = fabric.add_node("src");
        let dst = fabric.add_node("dst");
        let dst_id = dst.id;
        let mut listener = netsim::tcp::TcpListener::bind(&dst, 7000);
        // 3 rounds total: two warmup (fill the packet pool, grow the reader's
        // reassembly buffer and the sink) + one measured.
        let reader = sim::spawn(async move {
            let mut stream = listener.accept().await.expect("accept");
            let mut sink = Vec::with_capacity(PAYLOAD);
            for _ in 0..3 {
                sink.clear();
                stream.read_exact_into(PAYLOAD, &mut sink).await.expect("read");
            }
        });
        let mut stream = netsim::tcp::connect(&src, dst_id, 7000)
            .await
            .expect("connect");
        let payload = vec![0xEEu8; PAYLOAD];
        for _ in 0..2 {
            stream.write_all(&payload).await.expect("warmup write");
        }
        let (a0, _) = alloc_snapshot();
        stream.write_all(&payload).await.expect("measured write");
        let (a1, _) = alloc_snapshot();
        reader.await.expect("reader");
        (a1 - a0, mss)
    });
    let (count, mss) = allocs;
    TcpSendCheck {
        payload_bytes: PAYLOAD,
        packets: PAYLOAD.div_ceil(mss) as u64,
        allocs: count,
    }
}

// ---------------------------------------------------------------------------
// Cold-tier fetch throughput.
// ---------------------------------------------------------------------------

/// One cold-fetch measurement: sequential `read_from` passes over a fully
/// evicted tiered log at a fixed per-read byte cap.
struct ColdFetchPoint {
    max_bytes: u32,
    reads: u64,
    mib_per_sec: f64,
}

struct ColdFetchResult {
    segments: u32,
    bytes: u64,
    series: Vec<ColdFetchPoint>,
}

/// Builds a tiered log (small segments), evicts every sealed segment to the
/// file tier, then measures wall-clock throughput of reading the whole log
/// back through the sparse-index cold path at several read-size caps. Reads
/// go through `SegmentStore::read_cold` without paging segments back in, so
/// every pass stays cold.
fn run_cold_fetch() -> ColdFetchResult {
    use std::rc::Rc;

    let dir = std::env::temp_dir().join(format!("kdperf-cold-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cfg = kdstorage::StorageConfig::tiered(&dir).with_sync(kdstorage::SyncMode::Never);
    let store = Rc::new(kdstorage::FileStore::create(&dir, &cfg).expect("cold-fetch store"));
    let log = kdstorage::Log::with_store(
        kdstorage::LogConfig {
            segment_size: 256 * 1024,
            max_batch_size: 64 * 1024,
        },
        store,
    );

    // ~8 MiB of 1 KiB records, 16 per batch.
    let mut builder = kdstorage::BatchBuilder::new(1);
    for _ in 0..16 {
        builder.append(&Record::value(vec![0xC7u8; 1024]));
    }
    let batch = builder.build().expect("batch");
    const TARGET: u64 = 8 << 20;
    let mut appended = 0u64;
    while appended < TARGET {
        log.append_batch(&batch).expect("append");
        appended += batch.len() as u64;
    }
    log.set_high_watermark(log.next_offset());
    log.sync_all();
    for i in 0..log.head_index() {
        assert!(log.evict_segment(i), "segment {i} must evict");
    }

    let hw = log.next_offset();
    let mut series = Vec::new();
    let mut out = Vec::new();
    for max_bytes in [16 * 1024u32, 64 * 1024, 256 * 1024, 1 << 20] {
        let mut reads = 0u64;
        let mut bytes = 0u64;
        let t0 = Instant::now();
        let mut offset = 0u64;
        while offset < hw {
            let (_, next) = log.read_from_into(offset, max_bytes, true, &mut out);
            assert!(next > offset, "cold read stalled at {offset}");
            bytes += out.len() as u64;
            reads += 1;
            offset = next;
        }
        let wall = t0.elapsed().as_nanos().max(1) as f64;
        series.push(ColdFetchPoint {
            max_bytes,
            reads,
            mib_per_sec: bytes as f64 / (1 << 20) as f64 * 1e9 / wall,
        });
    }
    let result = ColdFetchResult {
        segments: log.head_index(),
        bytes: appended,
        series,
    };
    std::fs::remove_dir_all(&dir).ok();
    result
}

// ---------------------------------------------------------------------------
// Fan-in connection-scaling sweep (DESIGN.md §13).
// ---------------------------------------------------------------------------

/// Partitions the fan-in producers spread over (shared mode serialises FAAs
/// per partition at the paper's 2.68 Mops/s — one word would cap the sweep).
const FANIN_PARTITIONS: u32 = 16;
/// Per-QP receives in `PerQp` mode. Small on purpose: broker recv memory is
/// `clients x depth x WQE`, and the sweep's point is how that term scales.
const FANIN_RECV_DEPTH: usize = 16;
/// Ack receive buffers per simulated client (window is 1; 512 would pin
/// ~800 MiB of host memory at 100k clients for no modelling gain).
const FANIN_ACK_DEPTH: usize = 4;
const FANIN_RECORD_BYTES: usize = 128;
/// Minimum records measured per point, spread across all clients (every
/// client sends at least one record).
const FANIN_TARGET_RECORDS: usize = 8192;
/// SRQ+mux must retain at least this fraction of its below-knee reference
/// throughput at every point with >= 10k clients.
const FANIN_RETENTION_MIN: f64 = 0.80;

struct FaninPoint {
    clients: usize,
    per_client: usize,
    virtual_ns: u64,
    wall_ms: u64,
    /// Broker-NIC posted-receive memory high-water mark (modeled bytes:
    /// WQE + buffer per posted WR).
    recv_buf_peak: u64,
    /// Broker-NIC pinned QP contexts high-water mark.
    qp_contexts_peak: u64,
    /// Modeled NIC QP-context-cache miss rate at peak occupancy.
    miss_rate: f64,
}

impl FaninPoint {
    fn records(&self) -> u64 {
        (self.clients * self.per_client) as u64
    }

    /// Virtual-time produce throughput (the modeled-hardware number; the
    /// connect phase is excluded from the measured span).
    fn records_per_sec(&self) -> f64 {
        self.records() as f64 * 1e9 / self.virtual_ns.max(1) as f64
    }
}

struct FaninMode {
    label: &'static str,
    points: Vec<FaninPoint>,
}

struct FaninSweep {
    min: usize,
    max: usize,
    nic_cache_qps: u64,
    srq_depth: usize,
    modes: Vec<FaninMode>,
    /// Scaling-contract violations (empty = the fan-in gate passes).
    failures: Vec<String>,
}

/// Log-spaced client counts: decades up from `min`, with `max` always
/// included as the final point.
fn fanin_points(min: usize, max: usize) -> Vec<usize> {
    let mut pts = Vec::new();
    let mut n = min.max(1);
    while n < max {
        pts.push(n);
        n = n.saturating_mul(10);
    }
    pts.push(max);
    pts
}

/// One fan-in point: a 1-broker KafkaDirect cluster in the given connection
/// mode, `clients` shared-mode RDMA producers (one node + NIC + QP each)
/// spread over [`FANIN_PARTITIONS`] partitions. Every client connects first;
/// the measured span covers only the produce phase.
fn run_fanin_point(conn: kafkadirect::ConnMode, clients: usize) -> FaninPoint {
    let registry = kdtelem::Registry::new();
    let _telem = kdtelem::enter(&registry);
    let rt = sim::Runtime::new();
    let per_client = (FANIN_TARGET_RECORDS / clients).max(1);
    let t0 = Instant::now();
    let (virtual_ns, recv_buf_peak, qp_contexts_peak) = rt.block_on(async move {
        let cluster = SimCluster::start_with(
            SystemKind::KafkaDirect,
            1,
            ClusterOptions {
                conn_mode: Some(conn),
                recv_depth: Some(FANIN_RECV_DEPTH),
                ..Default::default()
            },
        );
        cluster.create_topic("fanin", FANIN_PARTITIONS, 1).await;
        let mut leaders = Vec::with_capacity(FANIN_PARTITIONS as usize);
        for p in 0..FANIN_PARTITIONS {
            leaders.push(cluster.leader_of("fanin", p).await);
        }
        let mut connects = Vec::with_capacity(clients);
        for i in 0..clients {
            let node = cluster.add_client_node(&format!("f{i}"));
            let p = (i % FANIN_PARTITIONS as usize) as u32;
            let leader = leaders[p as usize];
            connects.push(sim::spawn(async move {
                RdmaProducer::connect_with_ack_depth(
                    &node,
                    leader,
                    "fanin",
                    p,
                    true,
                    FANIN_ACK_DEPTH,
                )
                .await
                .expect("fanin producer connect")
            }));
        }
        let mut producers = Vec::with_capacity(clients);
        for c in connects {
            producers.push(c.await.expect("fanin connect task"));
        }
        let v0 = sim::now();
        let mut sends = Vec::with_capacity(clients);
        for mut prod in producers {
            sends.push(sim::spawn(async move {
                let rec = Record::value(vec![0x6b; FANIN_RECORD_BYTES]);
                for _ in 0..per_client {
                    prod.send(&rec).await.expect("fanin send");
                }
                prod
            }));
        }
        let mut producers = Vec::with_capacity(clients);
        for s in sends {
            producers.push(s.await.expect("fanin send task"));
        }
        let virtual_ns = (sim::now() - v0).as_nanos() as u64;
        let broker = cluster.broker(0);
        let inner = broker.inner().clone();
        let out = (
            virtual_ns,
            inner.nic.recv_buffer_bytes_peak(),
            inner.nic.qp_contexts_peak(),
        );
        // Tear down inside the runtime (disconnects talk to the fabric).
        drop(inner);
        drop(producers);
        drop(cluster);
        out
    });
    let cap = kafkadirect::Profile::testbed().net.nic_cache_qps;
    let miss_rate = if cap > 0 && qp_contexts_peak > cap {
        (qp_contexts_peak - cap) as f64 / qp_contexts_peak as f64
    } else {
        0.0
    };
    FaninPoint {
        clients,
        per_client,
        virtual_ns,
        wall_ms: t0.elapsed().as_millis() as u64,
        recv_buf_peak,
        qp_contexts_peak,
        miss_rate,
    }
}

fn run_fanin_sweep(cfg: &Config) -> FaninSweep {
    const MODES: [(&str, kafkadirect::ConnMode); 3] = [
        ("per_qp", kafkadirect::ConnMode::PerQp),
        ("srq", kafkadirect::ConnMode::Srq),
        ("srq_mux", kafkadirect::ConnMode::SrqMux),
    ];
    let counts = fanin_points(cfg.fanin_min, cfg.fanin_max);
    let mut modes = Vec::new();
    for (label, conn) in MODES {
        let mut points = Vec::new();
        for &clients in &counts {
            let p = run_fanin_point(conn, clients);
            println!(
                "  {:<16} {label:>7} {:>7} clients: {:>9.0} rec/s (virtual)  recv {:>7} KiB  \
                 contexts {:>7}  miss {:>5.1}%  ({} ms wall)",
                "fanin_sweep",
                p.clients,
                p.records_per_sec(),
                p.recv_buf_peak / 1024,
                p.qp_contexts_peak,
                p.miss_rate * 100.0,
                p.wall_ms,
            );
            points.push(p);
        }
        modes.push(FaninMode { label, points });
    }

    let profile = kafkadirect::Profile::testbed();
    let cap = profile.net.nic_cache_qps;
    let srq_depth = kafkadirect::BrokerConfig::default().srq_depth;
    let mut failures = Vec::new();

    // The scaling contract. Throughput clauses need points on both sides of
    // the cache knee, so a `--smoke`-sized sweep only checks the memory
    // invariants.
    let by = |label: &str| modes.iter().find(|m| m.label == label).unwrap();
    fn reference(m: &FaninMode, cap: u64) -> Option<&FaninPoint> {
        m.points
            .iter()
            .rfind(|p| p.clients <= (cap as usize).min(1000))
    }

    // 1. SRQ modes: broker posted-receive memory is O(1) in client count.
    for label in ["srq", "srq_mux"] {
        let m = by(label);
        let lo = m.points.iter().map(|p| p.recv_buf_peak).min().unwrap_or(0);
        let hi = m.points.iter().map(|p| p.recv_buf_peak).max().unwrap_or(0);
        if hi > lo {
            failures.push(format!(
                "{label}: broker recv-buffer peak grew with client count \
                 ({lo} -> {hi} bytes; SRQ provisioning must be O(1))"
            ));
        }
    }
    // 2. Per-QP mode: posted-receive memory is O(clients) — the baseline the
    //    SRQ exists to fix. (Checked whenever the range spans >= 10x.)
    let per_qp = by("per_qp");
    if let (Some(first), Some(last)) = (per_qp.points.first(), per_qp.points.last()) {
        if last.clients >= first.clients * 10 && last.recv_buf_peak < first.recv_buf_peak * 10 {
            failures.push(format!(
                "per_qp: broker recv-buffer peak is not O(clients) \
                 ({} bytes at {} clients vs {} bytes at {} clients)",
                first.recv_buf_peak, first.clients, last.recv_buf_peak, last.clients
            ));
        }
    }
    // 3. Past the knee, per-QP throughput degrades (QP-context cache
    //    thrashing) while SRQ+mux retains >= 80% of its reference.
    if let Some(worst) = per_qp.points.last().filter(|p| p.clients > cap as usize) {
        if let Some(base) = reference(per_qp, cap) {
            let ratio = worst.records_per_sec() / base.records_per_sec();
            if ratio >= FANIN_RETENTION_MIN {
                failures.push(format!(
                    "per_qp: expected cache-knee degradation past {cap} QPs, but \
                     {} clients still run at {:.0}% of the {}-client rate",
                    worst.clients,
                    ratio * 100.0,
                    base.clients
                ));
            }
        }
        let mux = by("srq_mux");
        if let Some(base) = reference(mux, cap) {
            for p in mux.points.iter().filter(|p| p.clients >= 10_000) {
                let ratio = p.records_per_sec() / base.records_per_sec();
                if ratio < FANIN_RETENTION_MIN {
                    failures.push(format!(
                        "srq_mux: {} clients retain only {:.0}% of the \
                         {}-client throughput (floor {:.0}%)",
                        p.clients,
                        ratio * 100.0,
                        base.clients,
                        FANIN_RETENTION_MIN * 100.0
                    ));
                }
            }
        }
    }

    FaninSweep {
        min: cfg.fanin_min,
        max: cfg.fanin_max,
        nic_cache_qps: cap,
        srq_depth,
        modes,
        failures,
    }
}

fn json_fanin(s: &FaninSweep) -> String {
    let modes: Vec<String> = s
        .modes
        .iter()
        .map(|m| {
            let pts: Vec<String> = m
                .points
                .iter()
                .map(|p| {
                    format!(
                        concat!(
                            "{{ \"clients\": {}, \"records\": {}, ",
                            "\"virtual_ns\": {}, \"records_per_sec\": {:.0}, ",
                            "\"recv_buffer_bytes_peak\": {}, ",
                            "\"qp_contexts_peak\": {}, ",
                            "\"nic_cache_miss_rate\": {:.4}, ",
                            "\"wall_ms\": {} }}"
                        ),
                        p.clients,
                        p.records(),
                        p.virtual_ns,
                        p.records_per_sec(),
                        p.recv_buf_peak,
                        p.qp_contexts_peak,
                        p.miss_rate,
                        p.wall_ms,
                    )
                })
                .collect();
            format!(
                "\"{}\": [\n        {}\n      ]",
                m.label,
                pts.join(",\n        ")
            )
        })
        .collect();
    let failures: Vec<String> = s
        .failures
        .iter()
        .map(|f| format!("\"{}\"", f.replace('"', "'")))
        .collect();
    format!(
        concat!(
            "{{\n",
            "    \"clients\": \"{}..{}\",\n",
            "    \"partitions\": {},\n",
            "    \"recv_depth\": {},\n",
            "    \"srq_depth\": {},\n",
            "    \"nic_cache_qps\": {},\n",
            "    \"retention_floor\": {:.2},\n",
            "    \"modes\": {{\n      {}\n    }},\n",
            "    \"failures\": [{}],\n",
            "    \"pass\": {}\n",
            "  }}"
        ),
        s.min,
        s.max,
        FANIN_PARTITIONS,
        FANIN_RECV_DEPTH,
        s.srq_depth,
        s.nic_cache_qps,
        FANIN_RETENTION_MIN,
        modes.join(",\n      "),
        failures.join(", "),
        s.failures.is_empty(),
    )
}

// ---------------------------------------------------------------------------
// Reporting.
// ---------------------------------------------------------------------------

const RDMA_ALLOC_BUDGET: f64 = 2.0;
/// Executor polls per exclusive-RDMA record at steady state. The PR 4
/// one-completion-per-wakeup loop needed ~20.8; batched CQ draining and
/// chained posting must keep at least a 2x margin on it.
const RDMA_POLLS_BUDGET: f64 = 12.0;
/// Max wall-clock throughput cost of running the virtual-time sampler, in
/// percent of unsampled exclusive-RDMA records/s. Override with
/// `KDPERF_SAMPLER_BUDGET=<pct>` (useful on noisy shared hosts).
const SAMPLER_OVERHEAD_BUDGET_PCT: f64 = 3.0;

fn sampler_budget_pct() -> f64 {
    std::env::var("KDPERF_SAMPLER_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(SAMPLER_OVERHEAD_BUDGET_PCT)
}

/// The sampler-overhead measurement: best-of-N unsampled vs best-of-N
/// sampled exclusive-RDMA runs (best-of damps scheduler noise; overhead
/// clamps at zero since a sampled run can win by luck).
struct SamplerOverhead {
    base_rps: f64,
    sampled_rps: f64,
    samples: u64,
    /// Spread of the identical-config unsampled runs, as a % of the best —
    /// the host's measured noise floor. The wall-clock budget is enforced
    /// only when this floor is at or below the budget.
    noise_floor_pct: f64,
    /// Allocations the sampled run made beyond its unsampled twin (the
    /// deterministic side of the contract: sampler ticks must not allocate).
    extra_allocs: u64,
}

impl SamplerOverhead {
    fn overhead_pct(&self) -> f64 {
        ((self.base_rps - self.sampled_rps) / self.base_rps * 100.0).max(0.0)
    }

    /// Whether the wall-clock overhead budget is enforced on this host.
    fn gated(&self) -> bool {
        self.noise_floor_pct <= sampler_budget_pct()
    }

    /// One-time ring growth is bounded; per-tick allocation scales with the
    /// tick count, so this allowance passes any alloc-free sampler while
    /// even one allocation per tick trips it.
    fn alloc_allowance(&self) -> u64 {
        self.samples / 4 + 256
    }
}

fn json_path(r: &PathResult) -> String {
    let cqe_batch = match &r.cqe_batch {
        Some(h) => format!(
            concat!(
                "{{\n",
                "        \"drains\": {},\n",
                "        \"cqes\": {},\n",
                "        \"mean\": {:.2},\n",
                "        \"p50\": {},\n",
                "        \"p90\": {},\n",
                "        \"p99\": {},\n",
                "        \"max\": {}\n",
                "      }}"
            ),
            h.count, h.sum, h.mean, h.p50, h.p90, h.p99, h.max,
        ),
        None => "null".to_string(),
    };
    format!(
        concat!(
            "{{\n",
            "      \"records\": {},\n",
            "      \"wall_ns\": {},\n",
            "      \"virtual_ns\": {},\n",
            "      \"ns_per_record\": {:.1},\n",
            "      \"records_per_sec\": {:.0},\n",
            "      \"executor_polls\": {},\n",
            "      \"polls_per_record\": {:.2},\n",
            "      \"events_per_sec\": {:.0},\n",
            "      \"allocs\": {},\n",
            "      \"allocs_per_record\": {:.3},\n",
            "      \"alloc_bytes\": {},\n",
            "      \"cqe_batch_histogram\": {}\n",
            "    }}"
        ),
        r.records,
        r.wall_ns,
        r.virtual_ns,
        r.ns_per_record(),
        r.records_per_sec(),
        r.polls,
        r.polls_per_record(),
        r.events_per_sec(),
        r.allocs,
        r.allocs_per_record(),
        r.alloc_bytes,
        cqe_batch,
    )
}

// ---------------------------------------------------------------------------
// Sharded parallel-simulation sweep (DESIGN.md §12).
// ---------------------------------------------------------------------------

/// Groups in the sweep topology: each is a complete 1-broker KafkaDirect
/// cluster with its own client machines, placed on shard `g % shards`.
const SWEEP_GROUPS: usize = 8;
/// Exclusive-RDMA producers per group, one per partition — 64 clients total.
const SWEEP_PRODUCERS: usize = 8;
const SWEEP_SEED: u64 = 42;

struct SweepPoint {
    shards: usize,
    wall_ns: u64,
    records: u64,
    /// Executor polls summed over every shard.
    polls: u64,
    stats: Vec<sim::shard::ShardStats>,
}

impl SweepPoint {
    fn records_per_sec(&self) -> f64 {
        self.records as f64 * 1e9 / self.wall_ns.max(1) as f64
    }

    /// Simulation-event throughput each worker sustained — the number that
    /// should stay flat as shards scale (given enough cores).
    fn events_per_sec_per_shard(&self) -> f64 {
        self.polls as f64 * 1e9 / self.wall_ns.max(1) as f64 / self.shards as f64
    }

    /// Share of the run's wall-clock this shard spent blocked on the
    /// window barrier — the conservative protocol's synchronization cost.
    fn barrier_pct(&self, s: &sim::shard::ShardStats) -> f64 {
        s.barrier_wait_ns as f64 * 100.0 / self.wall_ns.max(1) as f64
    }
}

struct ShardSweep {
    records_per_producer: usize,
    window: usize,
    hw_threads: usize,
    lookahead_ns: u64,
    points: Vec<SweepPoint>,
    /// Parallel-mode sampler gate: best-of-2 each way at the largest shard
    /// count, with a 100 µs virtual-time sampler running in every group.
    sampler_shards: usize,
    sampler: SamplerOverhead,
}

impl ShardSweep {
    fn speedup(&self, p: &SweepPoint) -> f64 {
        match self.points.iter().find(|q| q.shards == 1) {
            Some(base) => base.wall_ns as f64 / p.wall_ns.max(1) as f64,
            None => 0.0,
        }
    }
}

/// One sweep group: a 1-broker cluster, an 8-partition topic, and one
/// exclusive one-sided producer per partition pushing windowed records.
/// Returns `(records acked, series samples taken)`.
fn sweep_group(
    ctx: &GroupCtx,
    records_per_producer: usize,
    window: usize,
    record_size: usize,
    sampled: bool,
) -> LocalFuture<(u64, u64)> {
    let opts = ctx.opts.clone();
    let registry = ctx.registry.clone();
    let injector = ctx.injector.clone();
    Box::pin(async move {
        let cluster = SimCluster::start_with(SystemKind::KafkaDirect, 1, opts);
        cluster
            .create_topic("bench", SWEEP_PRODUCERS as u32, 1)
            .await;
        // Per-group sampler into the group's own registry: the series ring
        // is shard-local by construction (Rc state on the owning thread),
        // merged with the rest of the group's telemetry at drain.
        let series = sampled.then(|| {
            kdtelem::Sampler::start(
                &registry,
                kdtelem::SeriesOptions {
                    interval: std::time::Duration::from_micros(100),
                    capacity: 1 << 16,
                },
            )
        });
        let mut handles = Vec::new();
        for p in 0..SWEEP_PRODUCERS as u32 {
            let node = cluster.add_client_node(&format!("bench-p{p}"));
            let leader = cluster.leader_of("bench", p).await;
            // Producer tasks construct clients, so each must poll with the
            // group's registry/injector ambient (see shardsim::scoped).
            let fut = scoped(&registry, &injector, async move {
                let mut prod = AnyProducer::connect(
                    SystemKind::KafkaDirect,
                    &node,
                    leader,
                    "bench",
                    p,
                    ProducerMode::RdmaExclusive,
                )
                .await;
                let rec = Record::value(vec![0x5a; record_size]);
                prod.send_windowed(&rec, records_per_producer, window).await;
                records_per_producer as u64
            });
            handles.push(sim::spawn(fut));
        }
        let mut total = 0u64;
        for h in handles {
            total += h.await.expect("sweep producer");
        }
        let samples = series.map(|s| {
            s.stop();
            s.samples()
        });
        (total, samples.unwrap_or(0))
    })
}

fn run_shard_sweep(cfg: &Config) -> ShardSweep {
    let records_per_producer = (cfg.records / SWEEP_PRODUCERS).max(50);
    let opts = ClusterOptions::default();
    // (wall_ns, records, samples, polls, stats)
    let run_once = |shards: usize, sampled: bool| {
        let t0 = Instant::now();
        let run = run_sharded_groups(shards, SWEEP_GROUPS, SWEEP_SEED, &opts, |ctx: &GroupCtx| {
            sweep_group(ctx, records_per_producer, cfg.window, cfg.record_size, sampled)
        });
        let wall_ns = t0.elapsed().as_nanos() as u64;
        let records: u64 = run.groups.iter().map(|g| g.result.0).sum();
        let samples: u64 = run.groups.iter().map(|g| g.result.1).sum();
        let polls: u64 = run.stats.iter().map(|s| s.polls).sum();
        (wall_ns, records, samples, polls, run.stats)
    };
    let mut points: Vec<SweepPoint> = Vec::new();
    for &shards in &cfg.shards {
        let (wall_ns, records, _, polls, stats) = run_once(shards, false);
        points.push(SweepPoint {
            shards,
            wall_ns,
            records,
            polls,
            stats,
        });
    }
    // Every shard count must have simulated the identical workload.
    assert!(
        points.windows(2).all(|w| w[0].records == w[1].records),
        "sharded sweep: record totals diverged across shard counts"
    );

    // Sampler-overhead gate in parallel mode: the ≤3% telemetry budget must
    // hold with every group sampling concurrently at the largest shard
    // count. Best-of-2 each way, like the single-runtime gate.
    let gate_shards = cfg.shards.iter().copied().max().unwrap_or(1);
    let rps = |wall_ns: u64, records: u64| records as f64 * 1e9 / wall_ns.max(1) as f64;
    let base_point = points
        .iter()
        .find(|p| p.shards == gate_shards)
        .map(|p| rps(p.wall_ns, p.records))
        .unwrap_or(0.0);
    let base2 = run_once(gate_shards, false);
    let s1 = run_once(gate_shards, true);
    let s2 = run_once(gate_shards, true);
    let (sampled_best, samples) = if rps(s1.0, s1.1) >= rps(s2.0, s2.1) {
        (rps(s1.0, s1.1), s1.2)
    } else {
        (rps(s2.0, s2.1), s2.2)
    };
    let sampler = SamplerOverhead {
        base_rps: base_point.max(rps(base2.0, base2.1)),
        sampled_rps: sampled_best,
        samples,
        // The parallel-mode comparison gates on cores >= shards instead of
        // a measured noise floor, and its per-shard allocator deltas are
        // not tracked; these fields belong to the single-runtime gate.
        noise_floor_pct: 0.0,
        extra_allocs: 0,
    };

    ShardSweep {
        records_per_producer,
        window: cfg.window,
        hw_threads: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        lookahead_ns: opts.profile.lookahead().as_nanos() as u64,
        points,
        sampler_shards: gate_shards,
        sampler,
    }
}

fn json_sweep(s: &ShardSweep) -> String {
    let pts: Vec<String> = s
        .points
        .iter()
        .map(|p| {
            let shard_rows: Vec<String> = p
                .stats
                .iter()
                .map(|st| {
                    format!(
                        concat!(
                            "{{ \"shard\": {}, \"windows\": {}, \"polls\": {}, ",
                            "\"sent\": {}, \"received\": {}, ",
                            "\"barrier_wait_ns\": {}, \"barrier_wait_pct\": {:.1} }}"
                        ),
                        st.shard,
                        st.windows,
                        st.polls,
                        st.sent,
                        st.received,
                        st.barrier_wait_ns,
                        p.barrier_pct(st),
                    )
                })
                .collect();
            format!(
                concat!(
                    "{{\n",
                    "        \"shards\": {},\n",
                    "        \"wall_ns\": {},\n",
                    "        \"records\": {},\n",
                    "        \"records_per_sec\": {:.0},\n",
                    "        \"executor_polls\": {},\n",
                    "        \"events_per_sec_per_shard\": {:.0},\n",
                    "        \"speedup_vs_1shard\": {:.2},\n",
                    "        \"shard_stats\": [\n          {}\n        ]\n",
                    "      }}"
                ),
                p.shards,
                p.wall_ns,
                p.records,
                p.records_per_sec(),
                p.polls,
                p.events_per_sec_per_shard(),
                s.speedup(p),
                shard_rows.join(",\n          "),
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "    \"topology\": {{\n",
            "      \"groups\": {},\n",
            "      \"brokers\": {},\n",
            "      \"producer_clients\": {},\n",
            "      \"partitions_per_group\": {},\n",
            "      \"records_per_producer\": {},\n",
            "      \"window\": {}\n",
            "    }},\n",
            "    \"hw_threads\": {},\n",
            "    \"lookahead_ns\": {},\n",
            "    \"configs\": [\n      {}\n    ],\n",
            "    \"sampler_overhead\": {{\n",
            "      \"shards\": {},\n",
            "      \"base_records_per_sec\": {:.0},\n",
            "      \"sampled_records_per_sec\": {:.0},\n",
            "      \"overhead_pct\": {:.2},\n",
            "      \"budget_pct\": {:.1},\n",
            "      \"gated\": {},\n",
            "      \"samples\": {}\n",
            "    }}\n",
            "  }}"
        ),
        SWEEP_GROUPS,
        SWEEP_GROUPS,
        SWEEP_GROUPS * SWEEP_PRODUCERS,
        SWEEP_PRODUCERS,
        s.records_per_producer,
        s.window,
        s.hw_threads,
        s.lookahead_ns,
        pts.join(",\n      "),
        s.sampler_shards,
        s.sampler.base_rps,
        s.sampler.sampled_rps,
        s.sampler.overhead_pct(),
        sampler_budget_pct(),
        s.hw_threads >= s.sampler_shards,
        s.sampler.samples,
    )
}

fn json_cold_fetch(cold: &ColdFetchResult) -> String {
    let points: Vec<String> = cold
        .series
        .iter()
        .map(|p| {
            format!(
                concat!(
                    "{{ \"max_bytes\": {}, \"reads\": {}, ",
                    "\"mib_per_sec\": {:.1} }}"
                ),
                p.max_bytes, p.reads, p.mib_per_sec
            )
        })
        .collect();
    format!(
        concat!(
            "{{\n",
            "    \"segments\": {},\n",
            "    \"bytes\": {},\n",
            "    \"series\": [\n      {}\n    ]\n",
            "  }}"
        ),
        cold.segments,
        cold.bytes,
        points.join(",\n      "),
    )
}

#[allow(clippy::too_many_arguments)]
fn write_json(
    cfg: &Config,
    rdma: &PathResult,
    srq: &PathResult,
    tiered: &PathResult,
    tcp: &PathResult,
    tcp_1mib: &TcpSendCheck,
    cold: &ColdFetchResult,
    sampler: &SamplerOverhead,
    sweep: &ShardSweep,
    fanin: &FaninSweep,
    pass: bool,
) {
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"kdperf\",\n",
            "  \"workload\": \"fig10_11_produce\",\n",
            "  \"config\": {{\n",
            "    \"records\": {},\n",
            "    \"warmup\": {},\n",
            "    \"window\": {},\n",
            "    \"record_size\": {}\n",
            "  }},\n",
            "  \"datapaths\": {{\n",
            "    \"rdma_exclusive\": {},\n",
            "    \"rdma_srq\": {},\n",
            "    \"rdma_tiered\": {},\n",
            "    \"tcp\": {}\n",
            "  }},\n",
            "  \"tcp_1mib_send\": {{\n",
            "    \"payload_bytes\": {},\n",
            "    \"packets\": {},\n",
            "    \"allocs\": {}\n",
            "  }},\n",
            "  \"cold_fetch\": {},\n",
            "  \"fanin_sweep\": {},\n",
            "  \"sharded_sweep\": {},\n",
            "  \"sampler_overhead\": {{\n",
            "    \"base_records_per_sec\": {:.0},\n",
            "    \"sampled_records_per_sec\": {:.0},\n",
            "    \"overhead_pct\": {:.2},\n",
            "    \"budget_pct\": {:.1},\n",
            "    \"samples\": {},\n",
            "    \"noise_floor_pct\": {:.2},\n",
            "    \"gated\": {},\n",
            "    \"extra_allocs\": {},\n",
            "    \"alloc_allowance\": {}\n",
            "  }},\n",
            "  \"budget\": {{\n",
            "    \"rdma_exclusive_allocs_per_record_max\": {:.1},\n",
            "    \"rdma_exclusive_polls_per_record_max\": {:.1},\n",
            "    \"tcp_1mib_send_allocs_max\": {},\n",
            "    \"sampler_overhead_pct_max\": {:.1},\n",
            "    \"fanin_retention_min\": {:.2},\n",
            "    \"pass\": {}\n",
            "  }}\n",
            "}}\n"
        ),
        cfg.records,
        cfg.warmup,
        cfg.window,
        cfg.record_size,
        json_path(rdma),
        json_path(srq),
        json_path(tiered),
        json_path(tcp),
        tcp_1mib.payload_bytes,
        tcp_1mib.packets,
        tcp_1mib.allocs,
        json_cold_fetch(cold),
        json_fanin(fanin),
        json_sweep(sweep),
        sampler.base_rps,
        sampler.sampled_rps,
        sampler.overhead_pct(),
        sampler_budget_pct(),
        sampler.samples,
        sampler.noise_floor_pct,
        sampler.gated(),
        sampler.extra_allocs,
        sampler.alloc_allowance(),
        RDMA_ALLOC_BUDGET,
        RDMA_POLLS_BUDGET,
        tcp_1mib.packets,
        sampler_budget_pct(),
        FANIN_RETENTION_MIN,
        pass,
    );
    std::fs::write(&cfg.out, json).unwrap_or_else(|e| panic!("cannot write {}: {e}", cfg.out));
}

fn summary_row(r: &PathResult) -> String {
    format!(
        "| {} | {} | {:.0} | {:.0} | {:.2} | {:.3} |\n",
        r.label,
        r.records,
        r.records_per_sec(),
        r.ns_per_record(),
        r.polls_per_record(),
        r.allocs_per_record(),
    )
}

#[allow(clippy::too_many_arguments)]
fn write_summary(
    cfg: &Config,
    rdma: &PathResult,
    srq: &PathResult,
    tiered: &PathResult,
    tcp: &PathResult,
    tcp_1mib: &TcpSendCheck,
    cold: &ColdFetchResult,
    sampler: &SamplerOverhead,
    sweep: &ShardSweep,
    fanin: &FaninSweep,
    pass: bool,
) {
    let mut md = String::new();
    md.push_str("# kdperf — hot-datapath wall-clock report\n\n");
    md.push_str(&format!(
        "Workload: Fig 10/11 produce loop, {}-byte records, window {}, \
         {} warmup + {} measured records per datapath.\n\n",
        cfg.record_size, cfg.window, cfg.warmup, cfg.records
    ));
    md.push_str("| datapath | records | records/s (wall) | ns/record (wall) | polls/record | allocs/record |\n");
    md.push_str("|---|---|---|---|---|---|\n");
    md.push_str(&summary_row(rdma));
    md.push_str(&summary_row(srq));
    md.push_str(&summary_row(tiered));
    md.push_str(&summary_row(tcp));
    md.push_str(
        "\n`rdma_srq` is the identical exclusive-RDMA loop with the broker's \
         shared receive queue enabled (DESIGN.md §13) — held to the same \
         budgets. `rdma_tiered` is the same loop over the file-backed \
         tiered store (EveryMs(5) flushing): the hot tier shares the memory \
         path's allocation and scheduling budgets.\n",
    );
    if let Some(h) = &rdma.cqe_batch {
        md.push_str(&format!(
            "\nBroker CQ drains (exclusive RDMA): {} drains for {} CQEs — \
             mean batch {:.2}, p50 {}, p90 {}, p99 {}, max {}.\n",
            h.count, h.sum, h.mean, h.p50, h.p90, h.p99, h.max
        ));
    }
    md.push_str(&format!(
        "\n1 MiB TCP send (warm, {} MSS packets): **{} allocations** \
         (budget: < 1 per packet).\n",
        tcp_1mib.packets, tcp_1mib.allocs
    ));
    md.push_str(&format!(
        "\nCold-tier fetch ({} segments, {} MiB, fully evicted — every read \
         goes through the sparse-index file path):\n\n",
        cold.segments,
        cold.bytes >> 20
    ));
    md.push_str("| read cap | reads | MiB/s (wall) |\n|---|---|---|\n");
    for p in &cold.series {
        md.push_str(&format!(
            "| {} KiB | {} | {:.0} |\n",
            p.max_bytes / 1024,
            p.reads,
            p.mib_per_sec
        ));
    }
    md.push_str(&format!(
        "\nFan-in connection scaling (DESIGN.md §13): {}..{} shared-mode \
         RDMA producers (one QP each) over {} partitions against one broker, \
         NIC QP-context cache capacity {} (knee), SRQ depth {}, per-QP \
         recv depth {}. Throughput is **virtual-time** records/s over the \
         produce phase:\n\n",
        fanin.min,
        fanin.max,
        FANIN_PARTITIONS,
        fanin.nic_cache_qps,
        fanin.srq_depth,
        FANIN_RECV_DEPTH,
    ));
    md.push_str(
        "| mode | clients | records/s (virtual) | broker recv KiB (peak) | QP contexts (peak) | NIC cache miss |\n|---|---|---|---|---|---|\n",
    );
    for m in &fanin.modes {
        for p in &m.points {
            md.push_str(&format!(
                "| {} | {} | {:.0} | {} | {} | {:.1}% |\n",
                m.label,
                p.clients,
                p.records_per_sec(),
                p.recv_buf_peak / 1024,
                p.qp_contexts_peak,
                p.miss_rate * 100.0,
            ));
        }
    }
    if fanin.failures.is_empty() {
        md.push_str(&format!(
            "\nScaling contract: SRQ recv memory O(1) in clients, per-QP \
             recv memory O(clients), per-QP throughput degrades past the \
             knee, SRQ+mux retains >= {:.0}% of its below-knee rate at \
             >= 10k clients — **PASS**.\n",
            FANIN_RETENTION_MIN * 100.0
        ));
    } else {
        md.push_str("\nScaling contract **FAIL**:\n");
        for f in &fanin.failures {
            md.push_str(&format!("* {f}\n"));
        }
    }
    md.push_str(&format!(
        "\nSharded parallel simulation (DESIGN.md §12): {} groups × \
         (1 broker + {} exclusive-RDMA producers) = {} brokers / {} \
         producer clients, {} records/producer, lookahead {} ns, on a \
         {}-hardware-thread host:\n\n",
        SWEEP_GROUPS,
        SWEEP_PRODUCERS,
        SWEEP_GROUPS,
        SWEEP_GROUPS * SWEEP_PRODUCERS,
        sweep.records_per_producer,
        sweep.lookahead_ns,
        sweep.hw_threads,
    ));
    md.push_str(
        "| shards | wall ms | records/s | events/s/shard | speedup vs 1 | max barrier wait |\n|---|---|---|---|---|---|\n",
    );
    for p in &sweep.points {
        let max_barrier = p
            .stats
            .iter()
            .map(|st| p.barrier_pct(st))
            .fold(0.0f64, f64::max);
        md.push_str(&format!(
            "| {} | {:.0} | {:.0} | {:.0} | {:.2}× | {:.1}% |\n",
            p.shards,
            p.wall_ns as f64 / 1e6,
            p.records_per_sec(),
            p.events_per_sec_per_shard(),
            sweep.speedup(p),
            max_barrier,
        ));
    }
    md.push_str(
        "\nWall-clock speedup needs at least as many hardware threads as \
         shards; on fewer cores the sweep measures barrier/windowing \
         overhead only (threads time-slice one core). Equivalence of the \
         simulated history across shard counts is asserted separately by \
         `tests/shard_equivalence.rs`.\n",
    );
    md.push_str(&format!(
        "\nParallel-mode sampler (every group sampling at 100 µs virtual \
         time, {} shards, best-of-2 each way): {:.0} records/s unsampled vs \
         {:.0} records/s sampled ({} samples) — **{:.2}%** of throughput \
         (budget {:.1}%{}).\n",
        sweep.sampler_shards,
        sweep.sampler.base_rps,
        sweep.sampler.sampled_rps,
        sweep.sampler.samples,
        sweep.sampler.overhead_pct(),
        sampler_budget_pct(),
        if sweep.hw_threads >= sweep.sampler_shards {
            ""
        } else {
            "; ungated — fewer cores than shards, the wall-clock delta \
             measures OS time-slicing noise rather than sampling cost"
        },
    ));
    md.push_str(&format!(
        "\nSampler overhead (exclusive RDMA, best-of-3 interleaved pairs, \
         measured-records floor 5000): {:.0} records/s unsampled vs {:.0} \
         records/s with the 100 µs virtual-time sampler ({} samples) — \
         **{:.2}%** of throughput (budget {:.1}%{}). Sampled run allocated \
         +{} vs its unsampled twin (allowance {}; gated unconditionally — \
         sampler ticks must stay allocation-free).\n",
        sampler.base_rps,
        sampler.sampled_rps,
        sampler.samples,
        sampler.overhead_pct(),
        sampler_budget_pct(),
        if sampler.gated() {
            String::new()
        } else {
            format!(
                "; wall-clock budget ungated: host noise floor {:.1}% exceeds it",
                sampler.noise_floor_pct
            )
        },
        sampler.extra_allocs,
        sampler.alloc_allowance(),
    ));
    md.push_str(&format!(
        "\nBefore/after (exclusive RDMA, this host class): the pre-batching \
         loop (PR 4) measured ~111.5k records/s at ~20.8 polls/record and \
         ~1.0 allocs/record; with CQ batch draining + doorbell-batched \
         posting this run measures {:.0} records/s at {:.2} polls/record \
         and {:.3} allocs/record.\n",
        rdma.records_per_sec(),
        rdma.polls_per_record(),
        rdma.allocs_per_record()
    ));
    md.push_str(&format!(
        "\nBudgets: exclusive RDMA produce (memory and tiered) <= \
         {RDMA_ALLOC_BUDGET} allocs/record, <= {RDMA_POLLS_BUDGET} executor \
         polls/record, and sampler overhead <= {:.1}% at steady state — \
         **{}**.\n",
        sampler_budget_pct(),
        if pass { "PASS" } else { "FAIL" }
    ));
    md.push_str(
        "\nWall-clock numbers vary with the host; only the allocation counts \
         are asserted. Regenerate with `cargo run --release -p kdbench --bin kdperf`.\n",
    );
    if let Some(dir) = std::path::Path::new(&cfg.summary).parent() {
        if !dir.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(dir);
        }
    }
    std::fs::write(&cfg.summary, md)
        .unwrap_or_else(|e| panic!("cannot write {}: {e}", cfg.summary));
}

fn print_path(r: &PathResult) {
    println!(
        "  {:<16} {:>9.0} rec/s  {:>8.0} ns/rec  {:>6.2} polls/rec  {:>7.3} allocs/rec  ({} allocs, {} bytes, {} polls, {} ms wall, {} ms virtual)",
        r.label,
        r.records_per_sec(),
        r.ns_per_record(),
        r.polls_per_record(),
        r.allocs_per_record(),
        r.allocs,
        r.alloc_bytes,
        r.polls,
        r.wall_ns / 1_000_000,
        r.virtual_ns / 1_000_000,
    );
    if let Some(h) = &r.cqe_batch {
        println!(
            "  {:<16} {} drains / {} cqes  mean {:.2}  p50 {}  p90 {}  p99 {}  max {}",
            "cqe_batch", h.count, h.sum, h.mean, h.p50, h.p90, h.p99, h.max
        );
    }
}

fn main() {
    let cfg = Config::from_args();
    println!(
        "# kdperf: fig10/11 produce workload, {}B records, window {}, {}+{} records",
        cfg.record_size, cfg.window, cfg.warmup, cfg.records
    );

    let rdma = run_produce(
        "rdma_exclusive",
        SystemKind::KafkaDirect,
        ProducerMode::RdmaExclusive,
        &cfg,
        None,
        None,
        None,
    );
    print_path(&rdma);

    // The same exclusive-RDMA loop with the broker's shared receive queue
    // enabled: below the NIC cache knee the SRQ datapath must match the
    // per-QP schedule, so it is held to the identical alloc/poll budgets.
    let srq = run_produce(
        "rdma_srq",
        SystemKind::KafkaDirect,
        ProducerMode::RdmaExclusive,
        &cfg,
        None,
        Some(kafkadirect::ConnMode::Srq),
        None,
    );
    print_path(&srq);

    // The same loop over the durable tier: the active segment stays
    // MR-registered in memory, so RDMA produce must not get slower per
    // record in scheduling or allocation terms. (Periodic flushing — the
    // EveryMs mode — is what a throughput deployment would run.)
    let tiered_dir = std::env::temp_dir().join(format!("kdperf-tiered-{}", std::process::id()));
    std::fs::remove_dir_all(&tiered_dir).ok();
    let tiered_storage = kdstorage::StorageConfig::tiered(&tiered_dir)
        .with_sync(kdstorage::SyncMode::EveryMs(5));
    let tiered = run_produce(
        "rdma_tiered",
        SystemKind::KafkaDirect,
        ProducerMode::RdmaExclusive,
        &cfg,
        Some(tiered_storage),
        None,
        None,
    );
    std::fs::remove_dir_all(&tiered_dir).ok();
    print_path(&tiered);

    let tcp = run_produce("tcp", SystemKind::Kafka, ProducerMode::Rpc, &cfg, None, None, None);
    print_path(&tcp);
    let tcp_1mib = run_tcp_1mib();
    println!(
        "  {:<16} {} allocs for a warm 1 MiB send ({} packets)",
        "tcp_1mib_send", tcp_1mib.allocs, tcp_1mib.packets
    );
    let cold = run_cold_fetch();
    for p in &cold.series {
        println!(
            "  {:<16} {:>6} KiB reads: {:>7.0} MiB/s ({} reads over {} MiB cold)",
            "cold_fetch",
            p.max_bytes / 1024,
            p.mib_per_sec,
            p.reads,
            cold.bytes >> 20
        );
    }

    // Sharded parallel-simulation sweep: the identical grouped topology at
    // each shard count, wall-clock + barrier-wait attribution per shard.
    let sweep = run_shard_sweep(&cfg);
    for p in &sweep.points {
        let max_barrier = p
            .stats
            .iter()
            .map(|st| p.barrier_pct(st))
            .fold(0.0f64, f64::max);
        println!(
            "  {:<16} {} shard(s): {:>6.0} ms wall  {:>9.0} rec/s  {:>9.0} events/s/shard  {:.2}x vs 1  max barrier {:.1}%",
            "sharded_sweep",
            p.shards,
            p.wall_ns as f64 / 1e6,
            p.records_per_sec(),
            p.events_per_sec_per_shard(),
            sweep.speedup(p),
            max_barrier,
        );
    }
    if sweep.hw_threads < sweep.points.iter().map(|p| p.shards).max().unwrap_or(1) {
        println!(
            "  {:<16} note: {} hardware thread(s) — speedup >1 needs cores >= shards",
            "sharded_sweep", sweep.hw_threads
        );
    }
    println!(
        "  {:<16} sampler at {} shards: {:.2}% of base throughput ({} samples; budget {:.1}%{})",
        "sharded_sweep",
        sweep.sampler_shards,
        sweep.sampler.overhead_pct(),
        sweep.sampler.samples,
        sampler_budget_pct(),
        if sweep.hw_threads < sweep.sampler_shards {
            ", ungated: cores < shards"
        } else {
            ""
        },
    );

    // Sampler-overhead gate: best-of-3 unsampled vs best-of-3 sampled runs
    // of the exclusive-RDMA loop. Continuous telemetry must be cheap enough
    // to leave on. The comparison runs get a measured-records floor: a
    // percent-level wall-clock delta can't be resolved on a millisecond
    // run, so even `--smoke` (600 records) compares multi-millisecond runs
    // — best-of-N damps scheduler noise, the floor bounds its relative
    // size.
    let scfg = {
        let mut c = cfg.clone();
        c.records = c.records.max(5000);
        c
    };
    // Both sides arm the sampler — the base twin at an interval longer
    // than any run (zero ticks fire), so setup/teardown and code layout are
    // identical and the delta is per-tick sampling work alone.
    let one = |sampled: bool| {
        run_produce(
            if sampled { "rdma_sampled" } else { "rdma_exclusive" },
            SystemKind::KafkaDirect,
            ProducerMode::RdmaExclusive,
            &scfg,
            None,
            None,
            Some(if sampled { 100 } else { 3_600_000_000 }),
        )
    };
    // Interleave base/sampled pairs so drifting host load (frequency
    // scaling, a background task arriving mid-measurement) hits both sides
    // equally instead of biasing whichever block ran second. The spread of
    // the identical-config base runs doubles as the host's measured noise
    // floor: a 3% signal is only resolvable where same-binary same-config
    // runs agree to within 3%, so the wall-clock budget is enforced only
    // below that floor (the number is always reported). The *deterministic*
    // side of the contract — sampler ticks must not allocate — is gated
    // unconditionally below via the counting allocator.
    let mut base_best: Option<PathResult> = None;
    let mut sampled_best: Option<PathResult> = None;
    let mut base_lo = f64::INFINITY;
    let mut base_hi = 0.0f64;
    for _ in 0..3 {
        let b = one(false);
        base_lo = base_lo.min(b.records_per_sec());
        base_hi = base_hi.max(b.records_per_sec());
        if base_best.as_ref().is_none_or(|x| b.records_per_sec() > x.records_per_sec()) {
            base_best = Some(b);
        }
        let s = one(true);
        if sampled_best.as_ref().is_none_or(|x| s.records_per_sec() > x.records_per_sec()) {
            sampled_best = Some(s);
        }
    }
    let base2 = base_best.unwrap();
    let best_sampled = sampled_best.unwrap();
    print_path(&best_sampled);
    let sampler = SamplerOverhead {
        base_rps: base2.records_per_sec(),
        sampled_rps: best_sampled.records_per_sec(),
        samples: best_sampled.samples.unwrap_or(0),
        noise_floor_pct: ((base_hi - base_lo) / base_hi.max(1.0) * 100.0).max(0.0),
        extra_allocs: best_sampled.allocs.saturating_sub(base2.allocs),
    };
    let noise_floor_pct = sampler.noise_floor_pct;
    let sampler_gated = sampler.gated();
    let sampler_extra_allocs = sampler.extra_allocs;
    let sampler_alloc_allowance = sampler.alloc_allowance();
    println!(
        "  {:<16} {:.2}% of base throughput ({} samples; budget {:.1}%{}; +{} allocs vs base, allowance {})",
        "sampler_overhead",
        sampler.overhead_pct(),
        sampler.samples,
        sampler_budget_pct(),
        if sampler_gated {
            String::new()
        } else {
            format!(", ungated: host noise floor {noise_floor_pct:.1}% > budget")
        },
        sampler_extra_allocs,
        sampler_alloc_allowance,
    );

    // Fan-in connection-scaling sweep: the three receive-provisioning modes
    // across log-spaced client counts (virtual-time throughput + broker
    // receive-memory + modeled NIC cache pressure). Runs LAST on purpose:
    // its 10k–100k-client points churn hundreds of MiB of heap, and the
    // wall-clock sampler comparisons above are sensitive to allocator state
    // (its throughput is virtual-time, so nothing above perturbs *it*).
    let fanin = run_fanin_sweep(&cfg);

    let rdma_ok = rdma.allocs_per_record() <= RDMA_ALLOC_BUDGET;
    let polls_ok = rdma.polls_per_record() <= RDMA_POLLS_BUDGET;
    let srq_alloc_ok = srq.allocs_per_record() <= RDMA_ALLOC_BUDGET;
    let srq_polls_ok = srq.polls_per_record() <= RDMA_POLLS_BUDGET;
    let tiered_alloc_ok = tiered.allocs_per_record() <= RDMA_ALLOC_BUDGET;
    let tiered_polls_ok = tiered.polls_per_record() <= RDMA_POLLS_BUDGET;
    let tcp_send_ok = tcp_1mib.allocs < tcp_1mib.packets;
    let sampler_ok = !sampler_gated || sampler.overhead_pct() <= sampler_budget_pct();
    let sampler_allocs_ok = sampler_extra_allocs <= sampler_alloc_allowance;
    // The parallel-mode sampler comparison is a wall-clock measurement of a
    // `gate_shards`-thread sweep: with fewer hardware threads than shards
    // the threads time-slice one core and the best-of-2 delta measures OS
    // scheduling noise, not sampling cost (the same honesty note as the
    // sweep's speedup numbers). Gate only when the host can actually run
    // the shards in parallel; always report the measured number.
    let psampler_gated = sweep.hw_threads >= sweep.sampler_shards;
    let psampler_ok =
        !psampler_gated || sweep.sampler.overhead_pct() <= sampler_budget_pct();
    let fanin_ok = fanin.failures.is_empty();
    let pass = rdma_ok
        && polls_ok
        && srq_alloc_ok
        && srq_polls_ok
        && tiered_alloc_ok
        && tiered_polls_ok
        && tcp_send_ok
        && sampler_ok
        && sampler_allocs_ok
        && psampler_ok
        && fanin_ok;

    write_json(
        &cfg, &rdma, &srq, &tiered, &tcp, &tcp_1mib, &cold, &sampler, &sweep, &fanin, pass,
    );
    write_summary(
        &cfg, &rdma, &srq, &tiered, &tcp, &tcp_1mib, &cold, &sampler, &sweep, &fanin, pass,
    );
    println!("# wrote {} and {}", cfg.out, cfg.summary);

    if !rdma_ok {
        eprintln!(
            "kdperf: FAIL — exclusive RDMA produce allocates {:.3}/record (budget {RDMA_ALLOC_BUDGET})",
            rdma.allocs_per_record()
        );
    }
    if !polls_ok {
        eprintln!(
            "kdperf: FAIL — exclusive RDMA produce needs {:.2} executor polls/record (budget {RDMA_POLLS_BUDGET})",
            rdma.polls_per_record()
        );
    }
    if !tiered_alloc_ok {
        eprintln!(
            "kdperf: FAIL — tiered RDMA produce allocates {:.3}/record (budget {RDMA_ALLOC_BUDGET})",
            tiered.allocs_per_record()
        );
    }
    if !tiered_polls_ok {
        eprintln!(
            "kdperf: FAIL — tiered RDMA produce needs {:.2} executor polls/record (budget {RDMA_POLLS_BUDGET})",
            tiered.polls_per_record()
        );
    }
    if !srq_alloc_ok || !srq_polls_ok {
        eprintln!(
            "kdperf: FAIL — SRQ-enabled RDMA produce at {:.3} allocs/record / {:.2} polls/record \
             (budgets {RDMA_ALLOC_BUDGET} / {RDMA_POLLS_BUDGET})",
            srq.allocs_per_record(),
            srq.polls_per_record()
        );
    }
    if !tcp_send_ok {
        eprintln!(
            "kdperf: FAIL — warm 1 MiB TCP send allocated {} times ({} packets; budget < 1/packet)",
            tcp_1mib.allocs, tcp_1mib.packets
        );
    }
    if !fanin_ok {
        for f in &fanin.failures {
            eprintln!("kdperf: FAIL — fan-in sweep: {f}");
        }
    }
    if !sampler_ok {
        eprintln!(
            "kdperf: FAIL — telemetry sampler costs {:.2}% of exclusive-RDMA records/s (budget {:.1}%)",
            sampler.overhead_pct(),
            sampler_budget_pct()
        );
    }
    if !sampler_allocs_ok {
        eprintln!(
            "kdperf: FAIL — sampler ticks allocated: +{} allocs vs the unsampled twin (allowance {})",
            sampler_extra_allocs, sampler_alloc_allowance
        );
    }
    if !psampler_ok {
        eprintln!(
            "kdperf: FAIL — parallel-mode sampler ({} shards) costs {:.2}% of sweep records/s (budget {:.1}%)",
            sweep.sampler_shards,
            sweep.sampler.overhead_pct(),
            sampler_budget_pct()
        );
    }
    if !pass {
        std::process::exit(1);
    }
    println!("# allocation budgets: PASS");
}
