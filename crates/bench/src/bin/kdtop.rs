//! `kdtop` — render a recorded virtual-time telemetry series as ASCII.
//!
//! ```text
//! # render a series file exported with KD_SERIES=<path> (or the broker's
//! # admin Series dump saved to disk)
//! cargo run --release -p kdbench --bin kdtop -- results/series.jsonl
//!
//! # no argument: record a fresh sampled KafkaDirect produce run and
//! # render it (a live demo of the sampler)
//! cargo run --release -p kdbench --bin kdtop
//! ```
//!
//! Optional second argument: sparkline width in columns (default 64).

use kafkadirect::SystemKind;
use kdbench::{harness, kdtop};
use kdtelem::SeriesDump;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next();
    let width: usize = args
        .next()
        .and_then(|w| w.parse().ok())
        .unwrap_or(64);

    let dump: SeriesDump = match &path {
        Some(p) => {
            let text = match std::fs::read_to_string(p) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("kdtop: cannot read {p}: {e}");
                    std::process::exit(1);
                }
            };
            match SeriesDump::from_json_lines(&text) {
                Some(d) => d,
                None => {
                    eprintln!("kdtop: {p} is not a series JSON-lines file");
                    std::process::exit(1);
                }
            }
        }
        None => {
            eprintln!("kdtop: no series file given; recording a sampled KafkaDirect produce run");
            harness::capture_series(
                SystemKind::KafkaDirect,
                256,
                2000,
                std::time::Duration::from_micros(50),
            )
        }
    };
    print!("{}", kdtop::render(&dump, width));
}
