//! `kdtop` — render a recorded virtual-time telemetry series as ASCII.
//!
//! ```text
//! # render a series file exported with KD_SERIES=<path> (or the broker's
//! # admin Series dump saved to disk)
//! cargo run --release -p kdbench --bin kdtop -- results/series.jsonl
//!
//! # show only the shared-receive-queue instruments
//! cargo run --release -p kdbench --bin kdtop -- results/series.jsonl --filter rnic.srq
//!
//! # re-render every 500 ms while a live bench rewrites the file
//! cargo run --release -p kdbench --bin kdtop -- /tmp/kd_series.jsonl --watch
//!
//! # no argument: record a fresh sampled KafkaDirect produce run and
//! # render it (a live demo of the sampler)
//! cargo run --release -p kdbench --bin kdtop
//! ```
//!
//! Positional arguments: `[path] [width]` (sparkline width, default 64).
//! `--filter SUBSTR` keeps only instruments whose `component.name` label
//! contains SUBSTR (e.g. `--filter rnic.srq`, `--filter kdbroker`).
//! `--watch` re-reads the file every 500 ms (wall clock) and repaints.

use kafkadirect::SystemKind;
use kdbench::{harness, kdtop};
use kdtelem::SeriesDump;

fn load(path: &str) -> Option<SeriesDump> {
    SeriesDump::from_json_lines(&std::fs::read_to_string(path).ok()?)
}

fn main() {
    let mut path: Option<String> = None;
    let mut width: usize = 64;
    let mut filter: Option<String> = None;
    let mut watch = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--filter" => match args.next() {
                Some(f) => filter = Some(f),
                None => {
                    eprintln!("kdtop: --filter needs a substring (e.g. --filter rnic.srq)");
                    std::process::exit(2);
                }
            },
            "--watch" => watch = true,
            _ => {
                if path.is_none() && a.parse::<usize>().is_err() {
                    path = Some(a);
                } else if let Ok(w) = a.parse::<usize>() {
                    width = w;
                } else {
                    eprintln!("kdtop: unexpected argument {a}");
                    std::process::exit(2);
                }
            }
        }
    }

    if watch {
        let Some(p) = path else {
            eprintln!("kdtop: --watch needs a series file to re-read");
            std::process::exit(2);
        };
        // Top-like loop: repaint whenever the file parses; a torn
        // mid-rewrite read just keeps the previous frame. Ctrl-C exits.
        loop {
            if let Some(d) = load(&p) {
                // Clear screen + home, then the frame.
                print!("\x1b[2J\x1b[H{}", kdtop::render_filtered(&d, width, filter.as_deref()));
                use std::io::Write as _;
                std::io::stdout().flush().ok();
            }
            std::thread::sleep(std::time::Duration::from_millis(500));
        }
    }

    let dump: SeriesDump = match &path {
        Some(p) => match load(p) {
            Some(d) => d,
            None => {
                eprintln!("kdtop: cannot read {p} as a series JSON-lines file");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("kdtop: no series file given; recording a sampled KafkaDirect produce run");
            harness::capture_series(
                SystemKind::KafkaDirect,
                256,
                2000,
                std::time::Duration::from_micros(50),
            )
        }
    };
    print!("{}", kdtop::render_filtered(&dump, width, filter.as_deref()));
}
