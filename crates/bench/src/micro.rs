//! Raw-fabric microbenchmarks — the paper's C/C++ microbenchmarks of §4
//! (Figs 6, 7, 8), run against the simulated verbs instead of ConnectX-4s.
//!
//! "The microbenchmark is implemented in C/C++ and is not a part of Kafka.
//! The goal of this experiment is to show the performance upper-bound
//! achieved by RDMA networking." (§4.2.2)


use netsim::profile::Profile;
use netsim::Fabric;
use rnic::{
    Access, CompletionQueue, QpOptions, QueuePair, RNic, RdmaListener, RecvWr, SendWr, ShmBuf,
    WorkRequest,
};

use crate::stats::LatencyStats;

/// The two-machine microbenchmark rig: producers on machine A, a passive
/// "broker" buffer + notification hub on machine B. Each accepted QP gets
/// its own receive CQ and a replenisher task that recycles receive buffers
/// and forwards notifications into one hub channel (the C++ benchmark's
/// receiver thread).
pub struct MicroRig {
    pub client_nic: RNic,
    pub server_nic: RNic,
    /// 64 MiB target region (writes wrap around).
    pub region: rnic::MemoryRegion,
    /// The 8-byte reservation word.
    pub word: rnic::MemoryRegion,
    notifications: std::cell::RefCell<Option<sim::sync::mpsc::Receiver<rnic::Cqe>>>,
    accept_handle: sim::JoinHandle<()>,
}

pub const REGION_LEN: usize = 64 * 1024 * 1024;
const SERVER_RECV_DEPTH: usize = 1024;
const SERVER_RECV_BUF: usize = 1024;

impl MicroRig {
    pub async fn new() -> MicroRig {
        let fabric = Fabric::new(Profile::testbed());
        let a = fabric.add_node("client");
        let b = fabric.add_node("server");
        let client_nic = RNic::new(&a);
        let server_nic = RNic::new(&b);
        let region = server_nic.reg_mr(ShmBuf::zeroed(REGION_LEN), Access::all());
        let word = server_nic.reg_mr(ShmBuf::zeroed(8), Access::all());
        let (hub_tx, hub_rx) = sim::sync::mpsc::unbounded();
        let mut listener = RdmaListener::bind(&server_nic, 1);
        let nic2 = server_nic.clone();
        let accept_handle = sim::spawn(async move {
            let send_cq = nic2.create_cq(4096);
            while let Some(inc) = listener.accept().await {
                let recv_cq = nic2.create_cq(SERVER_RECV_DEPTH * 2);
                let qp = inc.accept(&nic2, send_cq.clone(), recv_cq.clone(), QpOptions::default());
                let bufs: Vec<ShmBuf> = (0..SERVER_RECV_DEPTH)
                    .map(|_| ShmBuf::zeroed(SERVER_RECV_BUF))
                    .collect();
                for (i, buf) in bufs.iter().enumerate() {
                    let _ = qp.post_recv(RecvWr {
                        wr_id: i as u64,
                        buf: Some(buf.as_slice()),
                    });
                }
                // Replenisher: recycle the receive and forward the CQE.
                let hub = hub_tx.clone();
                sim::spawn(async move {
                    while let Some(cqe) = recv_cq.next().await {
                        if !cqe.ok() {
                            break;
                        }
                        let _ = qp.post_recv(RecvWr {
                            wr_id: cqe.wr_id,
                            buf: Some(bufs[cqe.wr_id as usize].as_slice()),
                        });
                        if hub.try_send(cqe).is_err() {
                            break;
                        }
                    }
                });
            }
        });
        MicroRig {
            client_nic,
            server_nic,
            region,
            word,
            notifications: std::cell::RefCell::new(Some(hub_rx)),
            accept_handle,
        }
    }

    /// Next receiver-side notification (any QP).
    pub async fn next_notification(&self) -> rnic::Cqe {
        // Take the receiver out so no RefCell borrow lives across the await.
        let mut rx = self
            .notifications
            .borrow_mut()
            .take()
            .expect("one notification consumer at a time");
        let cqe = rx.recv().await.expect("hub alive");
        *self.notifications.borrow_mut() = Some(rx);
        cqe
    }

    /// Connects one producer QP from the client machine.
    pub async fn connect_producer(&self) -> (QueuePair, CompletionQueue) {
        let send_cq = self.client_nic.create_cq(8192);
        let recv_cq = self.client_nic.create_cq(64);
        let qp = self
            .client_nic
            .connect(
                self.server_nic.node().id,
                1,
                send_cq.clone(),
                recv_cq,
                QpOptions::default(),
            )
            .await
            .expect("micro connect");
        (qp, send_cq)
    }

    /// Discards notifications in the background (bandwidth experiments
    /// that don't time them).
    pub fn spawn_recv_sink(&self) {
        let mut rx = self
            .notifications
            .borrow_mut()
            .take()
            .expect("one notification consumer at a time");
        sim::spawn(async move { while rx.recv().await.is_some() {} });
    }

    pub fn keep(&self) -> &sim::JoinHandle<()> {
        &self.accept_handle
    }
}

/// Produce coordination flavour for Fig 6.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroMode {
    Exclusive,
    SharedFaa,
    SharedCas,
}

/// Fig 6: aggregated WriteWithImm goodput for `producers` concurrent
/// producers in the given mode. Returns GiB/s.
pub fn fig6_goodput_gibps(mode: MicroMode, producers: usize, msg_size: usize, total_bytes: usize) -> f64 {
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let rig = MicroRig::new().await;
        rig.spawn_recv_sink();
        let per_producer = total_bytes / producers / msg_size;
        let t0 = sim::now();
        let mut handles = Vec::new();
        for _ in 0..producers {
            let (qp, send_cq) = rig.connect_producer().await;
            let region = rig.region.remote();
            let word = rig.word.remote();
            handles.push(sim::spawn(async move {
                run_producer(mode, qp, send_cq, region, word, msg_size, per_producer).await;
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        let elapsed = sim::now() - t0;
        let bytes = (per_producer * producers * msg_size) as f64;
        bytes / elapsed.as_secs_f64() / (1u64 << 30) as f64
    })
}

const WINDOW: usize = 64;

async fn run_producer(
    mode: MicroMode,
    qp: QueuePair,
    send_cq: CompletionQueue,
    region: rnic::RemoteMr,
    word: rnic::RemoteMr,
    msg_size: usize,
    count: usize,
) {
    let payload = ShmBuf::zeroed(msg_size);
    let faa_result = ShmBuf::zeroed(8);
    let mut outstanding = 0usize;
    // CAS mode keeps a local guess of the counter value.
    let mut cas_guess = 0u64;
    for i in 0..count {
        // Reserve a region (shared modes) — this is the serialising step.
        let offset = match mode {
            MicroMode::Exclusive => (i * msg_size) % (REGION_LEN - msg_size),
            MicroMode::SharedFaa => {
                qp.post_send(SendWr::new(
                    1,
                    WorkRequest::FetchAdd {
                        local: faa_result.as_slice(),
                        remote_addr: word.addr,
                        rkey: word.rkey,
                        add: msg_size as u64,
                    },
                ))
                .unwrap();
                let old = wait_atomic(&send_cq, &mut outstanding).await;
                (old as usize) % (REGION_LEN - msg_size)
            }
            MicroMode::SharedCas => {
                // Retry until the CAS lands; each failure returns the
                // current value to retry with (§4.2.2: CAS can fail, FAA
                // cannot — which is why the paper picks FAA).
                loop {
                    qp.post_send(SendWr::new(
                        2,
                        WorkRequest::CompareSwap {
                            local: faa_result.as_slice(),
                            remote_addr: word.addr,
                            rkey: word.rkey,
                            compare: cas_guess,
                            swap: cas_guess + msg_size as u64,
                        },
                    ))
                    .unwrap();
                    let old = wait_atomic(&send_cq, &mut outstanding).await;
                    if old == cas_guess {
                        cas_guess = old + msg_size as u64;
                        break (old as usize) % (REGION_LEN - msg_size);
                    }
                    cas_guess = old;
                }
            }
        };
        // The data write pipelines (unsignaled except for windowing).
        let signaled = outstanding >= WINDOW || i + 1 == count;
        qp.post_send(SendWr {
            wr_id: 9,
            op: WorkRequest::WriteImm {
                local: payload.as_slice(),
                remote_addr: region.addr + offset as u64,
                rkey: region.rkey,
                imm: i as u32,
            },
            signaled,
            trace: None,
        })
        .unwrap();
        outstanding += 1;
        if signaled {
            // Drain one completion to bound the pipeline.
            while send_cq.next().await.unwrap().opcode != rnic::CqOpcode::RdmaWrite {}
            outstanding = 0;
        }
    }
}

/// Waits for the next atomic completion, skipping write completions.
async fn wait_atomic(send_cq: &CompletionQueue, outstanding: &mut usize) -> u64 {
    loop {
        let cqe = send_cq.next().await.expect("cq alive");
        match cqe.opcode {
            rnic::CqOpcode::FetchAdd | rnic::CqOpcode::CompSwap => {
                return cqe.atomic_old.expect("atomic result");
            }
            _ => {
                *outstanding = outstanding.saturating_sub(1);
            }
        }
    }
}

/// Fig 7 notification approach.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyMode {
    WriteWithImm,
    /// RDMA Write followed by a Send of `meta` bytes.
    WriteSend(usize),
}

/// Fig 7 (left): one-way notification latency in µs — post to receiver
/// completion — for a write of `msg_size`.
pub fn fig7_latency_us(mode: NotifyMode, msg_size: usize, samples: usize) -> f64 {
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let rig = MicroRig::new().await;
        let (qp, send_cq) = rig.connect_producer().await;
        sim::spawn(async move { while send_cq.next().await.is_some() {} });
        let payload = ShmBuf::zeroed(msg_size);
        let region = rig.region.remote();
        let mut stats = LatencyStats::new();
        for i in 0..samples {
            let t0 = sim::now();
            match mode {
                NotifyMode::WriteWithImm => {
                    qp.post_send(SendWr::unsignaled(
                        0,
                        WorkRequest::WriteImm {
                            local: payload.as_slice(),
                            remote_addr: region.addr,
                            rkey: region.rkey,
                            imm: i as u32,
                        },
                    ))
                    .unwrap();
                    rig.next_notification().await;
                }
                NotifyMode::WriteSend(meta) => {
                    qp.post_send(SendWr::unsignaled(
                        0,
                        WorkRequest::Write {
                            local: payload.as_slice(),
                            remote_addr: region.addr,
                            rkey: region.rkey,
                        },
                    ))
                    .unwrap();
                    let meta_buf = ShmBuf::zeroed(meta);
                    qp.post_send(SendWr::unsignaled(
                        1,
                        WorkRequest::Send {
                            local: meta_buf.as_slice(),
                        },
                    ))
                    .unwrap();
                    rig.next_notification().await;
                }
            }
            if i >= 3 {
                stats.record(sim::now() - t0);
            }
        }
        stats.median_us()
    })
}

/// Fig 7 (right): goodput of the data writes (GiB/s) under pipelined
/// notification.
pub fn fig7_bandwidth_gibps(mode: NotifyMode, msg_size: usize, count: usize) -> f64 {
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let rig = MicroRig::new().await;
        rig.spawn_recv_sink();
        let (qp, send_cq) = rig.connect_producer().await;
        let payload = ShmBuf::zeroed(msg_size);
        let region = rig.region.remote();
        let t0 = sim::now();
        let mut since_signal = 0usize;
        for i in 0..count {
            let offset = (i * msg_size) % (REGION_LEN - msg_size);
            let signaled = since_signal >= WINDOW || i + 1 == count;
            match mode {
                NotifyMode::WriteWithImm => {
                    qp.post_send(SendWr {
                        wr_id: 0,
                        op: WorkRequest::WriteImm {
                            local: payload.as_slice(),
                            remote_addr: region.addr + offset as u64,
                            rkey: region.rkey,
                            imm: i as u32,
                        },
                        signaled,
                        trace: None,
                    })
                    .unwrap();
                }
                NotifyMode::WriteSend(meta) => {
                    qp.post_send(SendWr::unsignaled(
                        0,
                        WorkRequest::Write {
                            local: payload.as_slice(),
                            remote_addr: region.addr + offset as u64,
                            rkey: region.rkey,
                        },
                    ))
                    .unwrap();
                    let meta_buf = ShmBuf::zeroed(meta);
                    qp.post_send(SendWr {
                        wr_id: 1,
                        op: WorkRequest::Send {
                            local: meta_buf.as_slice(),
                        },
                        signaled,
                        trace: None,
                    })
                    .unwrap();
                }
            }
            since_signal += 1;
            if signaled {
                send_cq.next().await.unwrap();
                since_signal = 0;
            }
        }
        let elapsed = sim::now() - t0;
        (count * msg_size) as f64 / elapsed.as_secs_f64() / (1u64 << 30) as f64
    })
}

/// Fig 8: merging 64-byte records into `batch_size`-byte RDMA Writes when
/// records arrive faster than small writes can be replicated ("the leader
/// receives small entries at a higher rate than it can replicate them",
/// §4.3.2). The leader keeps a bounded window of outstanding writes (the
/// credit mechanism); latency is post→receiver-completion per write.
/// Returns `(median latency µs, goodput GiB/s)`.
pub fn fig8_batching(batch_size: usize, records: usize) -> (f64, f64) {
    const RECORD: usize = 64;
    const REPL_WINDOW: usize = 16;
    let rt = sim::Runtime::new();
    rt.block_on(async move {
        let rig = MicroRig::new().await;
        let (qp, send_cq) = rig.connect_producer().await;
        sim::spawn(async move { while send_cq.next().await.is_some() {} });
        let region = rig.region.remote();
        let per_batch = (batch_size / RECORD).max(1);
        let payload = ShmBuf::zeroed(per_batch * RECORD);
        let mut latencies = LatencyStats::new();
        let t0 = sim::now();
        let mut sent = 0usize;
        let mut batch_index = 0usize;
        let mut births = Vec::new();
        let mut outstanding = 0usize;
        while sent < records {
            let n = per_batch.min(records - sent);
            if outstanding >= REPL_WINDOW {
                let cqe = rig.next_notification().await;
                latencies.record(sim::now() - births[cqe.imm.unwrap_or(0) as usize]);
                outstanding -= 1;
            }
            births.push(sim::now());
            qp.post_send(SendWr::unsignaled(
                0,
                WorkRequest::WriteImm {
                    local: payload.slice(0, n * RECORD),
                    remote_addr: region.addr
                        + ((batch_index * per_batch * RECORD) % (REGION_LEN - batch_size.max(RECORD)))
                            as u64,
                    rkey: region.rkey,
                    imm: batch_index as u32,
                },
            ))
            .unwrap();
            outstanding += 1;
            sent += n;
            batch_index += 1;
        }
        while outstanding > 0 {
            let cqe = rig.next_notification().await;
            latencies.record(sim::now() - births[cqe.imm.unwrap_or(0) as usize]);
            outstanding -= 1;
        }
        let elapsed = sim::now() - t0;
        let gibps = (sent * RECORD) as f64 / elapsed.as_secs_f64() / (1u64 << 30) as f64;
        (latencies.median_us(), gibps)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_exclusive_reaches_line_rate_for_large_msgs() {
        let g = fig6_goodput_gibps(MicroMode::Exclusive, 1, 256 * 1024, 32 << 20);
        assert!(g > 5.0, "large-message goodput {g} GiB/s");
    }

    #[test]
    fn fig6_shared_faa_small_messages_rate_limited() {
        // 64 B × 2.68 Mops/s ≈ 0.16 GiB/s ceiling for FAA-bound produce.
        let g = fig6_goodput_gibps(MicroMode::SharedFaa, 5, 64, 1 << 20);
        assert!(g < 0.3, "shared FAA 64B goodput {g} GiB/s exceeds atomic cap");
    }

    #[test]
    fn fig7_imm_latency_close_to_paper() {
        let us = fig7_latency_us(NotifyMode::WriteWithImm, 64, 20);
        assert!(us > 0.5 && us < 3.0, "WriteWithImm latency {us}us");
        let ws = fig7_latency_us(NotifyMode::WriteSend(16), 64, 20);
        assert!(ws > us, "Write+Send must be slower than WriteWithImm");
    }

    #[test]
    fn fig8_batching_improves_small_write_goodput() {
        let (l1, g1) = fig8_batching(64, 4096);
        let (l2, g2) = fig8_batching(1024, 8192);
        let (l3, g3) = fig8_batching(4096, 16384);
        assert!(g2 > 2.0 * g1, "batching goodput {g1} -> {g2}");
        assert!(l1 < 16.0, "no-batching latency {l1}us");
        assert!(l3 > l2, "latency must rise for large batches: {l2} -> {l3}");
        assert!(g3 > 5.0, "large batches reach line rate: {g3}");
    }
}
