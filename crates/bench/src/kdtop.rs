//! `kdtop` — an ASCII view of a recorded virtual-time telemetry series.
//!
//! Renders a [`kdtelem::SeriesDump`] (the `KD_SERIES=<path>` export or the
//! broker's `Request::Series` dump) as per-instrument sparklines over
//! virtual time: counter *rates*, gauge values, and histogram p99 trends.
//! Pure string formatting — no terminal control, so output pipes cleanly
//! into files and test assertions.

use kdtelem::SeriesDump;

/// Glyph ramp for sparklines, lowest to highest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Renders `dump` as an ASCII dashboard, `width` columns per sparkline.
pub fn render(dump: &SeriesDump, width: usize) -> String {
    render_filtered(dump, width, None)
}

/// [`render`] restricted to instruments whose `component.name` contains
/// `filter` (plain substring, case-sensitive). `--filter rnic.srq` shows
/// just the shared-receive-queue counters/gauges; `None` shows everything.
pub fn render_filtered(dump: &SeriesDump, width: usize, filter: Option<&str>) -> String {
    let width = width.max(8);
    let keep = |component: &str, name: &str| match filter {
        Some(f) => format!("{component}.{name}").contains(f),
        None => true,
    };
    let mut out = String::new();
    out.push_str(&format!(
        "kdtop — {} samples @ {} µs/interval{}{}\n",
        dump.samples,
        dump.interval_ns / 1_000,
        if dump.dropped > 0 {
            format!(" ({} dropped)", dump.dropped)
        } else {
            String::new()
        },
        match filter {
            Some(f) => format!(" [filter: {f}]"),
            None => String::new(),
        }
    ));

    let mut counters: Vec<_> = dump
        .counters
        .iter()
        .filter(|s| s.points.last().is_some_and(|p| p.value > 0))
        .filter(|s| keep(&s.component, &s.name))
        .collect();
    // Busiest first: rank by final cumulative value.
    counters.sort_by_key(|s| std::cmp::Reverse(s.points.last().map_or(0, |p| p.value)));
    if !counters.is_empty() {
        out.push_str("\ncounters (per-interval rate)\n");
        for s in counters {
            let series: Vec<u64> = s.points.iter().map(|p| p.delta).collect();
            let last = s.points.last().map_or(0, |p| p.value);
            out.push_str(&row(
                &format!("{}.{}", s.component, s.name),
                &series,
                width,
                &format!("total {last}"),
            ));
        }
    }

    let gauges: Vec<_> = dump
        .gauges
        .iter()
        .filter(|s| s.points.iter().any(|p| p.peak > 0))
        .filter(|s| keep(&s.component, &s.name))
        .collect();
    if !gauges.is_empty() {
        out.push_str("\ngauges (sampled value)\n");
        for s in gauges {
            let series: Vec<u64> = s.points.iter().map(|p| p.value).collect();
            let peak = s.points.iter().map(|p| p.peak).max().unwrap_or(0);
            out.push_str(&row(
                &format!("{}.{}", s.component, s.name),
                &series,
                width,
                &format!("peak {peak}"),
            ));
        }
    }

    let hists: Vec<_> = dump
        .histograms
        .iter()
        .filter(|s| s.points.iter().any(|p| p.count > 0))
        .filter(|s| keep(&s.component, &s.name))
        .collect();
    if !hists.is_empty() {
        out.push_str("\nhistograms (per-interval p99)\n");
        for s in hists {
            let series: Vec<u64> = s.points.iter().map(|p| p.p99).collect();
            let count: u64 = s.points.iter().map(|p| p.count).sum();
            out.push_str(&row(
                &format!("{}.{}", s.component, s.name),
                &series,
                width,
                &format!("n {count}"),
            ));
        }
    }
    out
}

/// One `label  |sparkline|  note` line; points are folded into `width`
/// columns by taking each column's maximum (spikes must stay visible).
fn row(label: &str, series: &[u64], width: usize, note: &str) -> String {
    format!("  {label:<32} |{}| {note}\n", sparkline(series, width))
}

fn sparkline(series: &[u64], width: usize) -> String {
    if series.is_empty() {
        return " ".repeat(width);
    }
    let cols: Vec<u64> = (0..width)
        .map(|c| {
            let lo = c * series.len() / width;
            let hi = (((c + 1) * series.len() / width).max(lo + 1)).min(series.len());
            series[lo..hi].iter().copied().max().unwrap_or(0)
        })
        .collect();
    let max = cols.iter().copied().max().unwrap_or(0);
    cols.iter()
        .map(|&v| {
            if max == 0 {
                ' '
            } else {
                let idx = (v as u128 * (RAMP.len() - 1) as u128).div_ceil(max as u128) as usize;
                RAMP[idx.min(RAMP.len() - 1)] as char
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdtelem::series::{CounterPoint, CounterSeries, GaugePoint, GaugeSeries};

    fn dump() -> SeriesDump {
        SeriesDump {
            interval_ns: 1_000_000,
            samples: 4,
            dropped: 0,
            counters: vec![
                CounterSeries {
                    component: "kdbroker".into(),
                    name: "rdma.commits".into(),
                    points: (1..=4)
                        .map(|i| CounterPoint {
                            ts_ns: i * 1_000_000,
                            value: i * 10,
                            delta: 10,
                        })
                        .collect(),
                },
                CounterSeries {
                    component: "rnic".into(),
                    name: "srq.posted".into(),
                    points: (1..=4)
                        .map(|i| CounterPoint {
                            ts_ns: i * 1_000_000,
                            value: i * 16,
                            delta: 16,
                        })
                        .collect(),
                },
            ],
            gauges: vec![GaugeSeries {
                component: "netsim".into(),
                name: "link.backlog_ns".into(),
                points: vec![GaugePoint {
                    ts_ns: 1_000_000,
                    value: 300,
                    peak: 900,
                }],
            }],
            histograms: vec![],
        }
    }

    #[test]
    fn renders_rows_for_active_instruments() {
        let text = render(&dump(), 24);
        assert!(text.contains("kdtop — 4 samples"));
        assert!(text.contains("kdbroker.rdma.commits"));
        assert!(text.contains("total 40"));
        assert!(text.contains("netsim.link.backlog_ns"));
        assert!(text.contains("peak 900"));
    }

    #[test]
    fn sparkline_scales_to_max() {
        let s = sparkline(&[0, 5, 10], 3);
        assert_eq!(s.len(), 3);
        assert_eq!(s.chars().next(), Some(' '));
        assert_eq!(s.chars().last(), Some('@'));
    }

    #[test]
    fn filter_restricts_to_matching_series() {
        let text = render_filtered(&dump(), 24, Some("rnic.srq"));
        assert!(text.contains("[filter: rnic.srq]"));
        assert!(text.contains("rnic.srq.posted"));
        assert!(text.contains("total 64"));
        assert!(!text.contains("kdbroker.rdma.commits"));
        assert!(!text.contains("netsim.link.backlog_ns"));
    }

    #[test]
    fn filter_matches_across_component_dot_name() {
        // The filter runs against the joined "component.name" label, so a
        // substring spanning the dot matches too.
        let text = render_filtered(&dump(), 24, Some("broker.rdma"));
        assert!(text.contains("kdbroker.rdma.commits"));
        assert!(!text.contains("rnic.srq.posted"));
    }

    #[test]
    fn empty_filter_matches_everything() {
        let all = render(&dump(), 24);
        let filtered = render_filtered(&dump(), 24, Some(""));
        // Same rows; only the header differs by the filter tag.
        assert_eq!(
            all.lines().skip(1).collect::<Vec<_>>(),
            filtered.lines().skip(1).collect::<Vec<_>>()
        );
    }

    #[test]
    fn quiet_instruments_are_hidden() {
        let mut d = dump();
        d.counters[0].points.iter_mut().for_each(|p| {
            p.value = 0;
            p.delta = 0;
        });
        let text = render(&d, 24);
        assert!(!text.contains("rdma.commits"));
    }
}
