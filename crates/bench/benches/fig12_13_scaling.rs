//! Figures 12 & 13 — produce scaling (§5.1).
//!
//! Fig 12: goodput of 32 KiB records vs number of partitions (per-TP write
//! locks cap per-partition parallelism; saturation at the API worker count).
//! Fig 13: total goodput of 4 KiB records vs number of producers against a
//! broker with a single API worker — the per-worker capacity that yields the
//! paper's "3.3× reduction in CPU load" claim.
//! Run with `cargo bench --bench fig12_13_scaling`.

use kafkadirect::SystemKind;
use kdbench::harness::{produce_bandwidth_mibps, ProduceOpts, ProducerMode};
use kdbench::stats::{fmt, Table};

fn fig12() {
    println!();
    println!("# Fig 12 — Produce goodput for 32 KiB records vs partitions (GiB/s)");
    println!("# paper: grows with partitions, saturates around 8 (the API worker");
    println!("#        count); KafkaDirect 4.5 GiB/s excl / 3 GiB/s shared; Kafka ~0.5.");
    let mut table = Table::new(&["partitions", "KD excl", "KD shared", "Kafka"]);
    for partitions in [1u32, 2, 4, 8, 16] {
        let mk = |system, mode| {
            let mut o = ProduceOpts::new(system, mode, 32 * 1024);
            o.partitions = partitions;
            o.producers = partitions as usize;
            o.records = 1500 / partitions as usize + 200;
            o.window = 32;
            produce_bandwidth_mibps(&o) / 1024.0
        };
        table.row(vec![
            partitions.to_string(),
            fmt(mk(SystemKind::KafkaDirect, ProducerMode::RdmaExclusive)),
            fmt(mk(SystemKind::KafkaDirect, ProducerMode::RdmaShared)),
            fmt(mk(SystemKind::Kafka, ProducerMode::Rpc)),
        ]);
    }
    table.print();
}

fn fig13() {
    println!();
    println!("# Fig 13 — Total goodput of 4 KiB records vs producers, ONE API worker (MiB/s)");
    println!("# paper: KafkaDirect plateaus ~630 MiB/s (>=4 producers); Kafka ~190 MiB/s.");
    println!("#        => line rate needs ~10 KD workers vs ~33 Kafka workers: 3.3x CPU.");
    let mut table = Table::new(&["producers", "KafkaDirect", "Kafka"]);
    let mut kd_plateau: f64 = 0.0;
    let mut kafka_plateau: f64 = 0.0;
    for producers in 1..=7usize {
        let mk = |system, mode| {
            let mut o = ProduceOpts::new(system, mode, 4096);
            o.partitions = producers as u32; // private TP per producer
            o.producers = producers;
            o.records = 400;
            o.window = 16;
            o.api_workers = Some(1);
            produce_bandwidth_mibps(&o)
        };
        let kd = mk(SystemKind::KafkaDirect, ProducerMode::RdmaExclusive);
        let kafka = mk(SystemKind::Kafka, ProducerMode::Rpc);
        kd_plateau = kd_plateau.max(kd);
        kafka_plateau = kafka_plateau.max(kafka);
        table.row(vec![producers.to_string(), fmt(kd), fmt(kafka)]);
    }
    table.print();
    let line_rate = 6.0 * 1024.0;
    println!(
        "# workers needed for 6 GiB/s line rate: KafkaDirect {:.1}, Kafka {:.1} => {:.1}x CPU-load reduction",
        line_rate / kd_plateau,
        line_rate / kafka_plateau,
        kd_plateau / kafka_plateau,
    );
}

fn main() {
    fig12();
    fig13();
}
