//! Figure 21 — the §5.4 event-processing benchmark: delay between event
//! generation at an IoT sensor and its consumption by a streaming engine,
//! under constant-rate and periodic-burst publishing, with and without
//! replication, for all three systems.
//!
//! Scaled down from the paper's 400 s runs to 30 virtual seconds per cell
//! (documented in EXPERIMENTS.md); the delay distributions stabilise within
//! seconds. Run with `cargo bench --bench fig21_events`.

use std::time::Duration;

use kafkadirect::events::SensorGenerator;
use kafkadirect::{Record, SimCluster, SystemKind};
use kdbench::harness::{AnyProducer, ProducerMode};
use kdbench::stats::{fmt, LatencyStats, Table};
use kdclient::{RdmaConsumer, TcpConsumer};

const RUN_SECS: u64 = 30;
/// 400 msg/s split over the two topics, as in the paper.
const RATE_PER_TOPIC: u64 = 200;
/// Periodic burst: every 10 s an enlarged batch (§5.4).
const BURST_PERIOD: Duration = Duration::from_secs(10);
const BURST_SIZE: usize = 400;

#[derive(Clone, Copy, PartialEq)]
enum Workload {
    ConstantRate,
    PeriodicBurst,
}

fn run_cell(system: SystemKind, workload: Workload, replicated: bool) -> (f64, f64, f64) {
    let rt = sim::Runtime::with_seed(7);
    rt.block_on(async move {
        let brokers = if replicated { 2 } else { 1 };
        let rf = if replicated { 2 } else { 1 };
        let cluster = SimCluster::start(system, brokers);
        cluster.create_topic("north", 1, rf).await;
        cluster.create_topic("south", 1, rf).await;

        let mode = if system.rdma_produce() {
            ProducerMode::RdmaExclusive
        } else {
            ProducerMode::Rpc
        };

        // Publishers: one sensor per topic.
        for topic in ["north", "south"] {
            let leader = cluster.leader_of(topic, 0).await;
            let node = cluster.add_client_node(&format!("sensor-{topic}"));
            let system = cluster.system;
            let topic = topic.to_string();
            sim::spawn(async move {
                let mut producer =
                    AnyProducer::connect(system, &node, leader, &topic, 0, mode).await;
                let mut generator = SensorGenerator::new(1);
                let interval = Duration::from_nanos(1_000_000_000 / RATE_PER_TOPIC);
                let deadline = sim::now() + Duration::from_secs(RUN_SECS);
                let mut next_burst = sim::now() + BURST_PERIOD;
                while sim::now() < deadline {
                    if workload == Workload::PeriodicBurst && sim::now() >= next_burst {
                        next_burst += BURST_PERIOD;
                        // The whole burst is born "now"; delays of its tail
                        // events include the produce-pipeline backlog.
                        let burst: Vec<Record> = (0..BURST_SIZE)
                            .map(|_| Record::value(generator.next_event().to_json().into_bytes()))
                            .collect();
                        producer.send_burst(&burst, 32).await;
                    }
                    let event = generator.next_event();
                    producer
                        .send(&Record::value(event.to_json().into_bytes()))
                        .await;
                    sim::time::sleep(interval).await;
                }
            });
        }

        // Engines: one consumer per topic, recording event delays.
        let mut handles = Vec::new();
        for topic in ["north", "south"] {
            let leader = cluster.leader_of(topic, 0).await;
            let node = cluster.add_client_node(&format!("engine-{topic}"));
            let rdma = cluster.system.rdma_consume();
            let transport = cluster.system.client_transport();
            let topic = topic.to_string();
            handles.push(sim::spawn(async move {
                let mut stats = LatencyStats::new();
                let deadline = sim::now() + Duration::from_secs(RUN_SECS);
                let mut since_commit = 0u32;
                if rdma {
                    let mut consumer = RdmaConsumer::connect(&node, leader, &topic, 0, 0)
                        .await
                        .expect("consumer");
                    while sim::now() < deadline {
                        let records = consumer.poll().await.expect("poll");
                        if records.is_empty() {
                            sim::time::sleep(Duration::from_micros(200)).await;
                            continue;
                        }
                        record_delays(&records, &mut stats);
                        since_commit += records.len() as u32;
                        if since_commit >= 100 {
                            // Commit offsets over TCP (§5.4's noted source
                            // of delay variance for KafkaDirect).
                            consumer.commit_offset("engine").await.ok();
                            since_commit = 0;
                        }
                    }
                } else {
                    let mut consumer =
                        TcpConsumer::connect(&node, leader, transport, &topic, 0, 0)
                            .await
                            .expect("consumer");
                    while sim::now() < deadline {
                        let records = consumer.poll().await.expect("poll");
                        if records.is_empty() {
                            sim::time::sleep(Duration::from_micros(200)).await;
                            continue;
                        }
                        record_delays(&records, &mut stats);
                    }
                }
                stats
            }));
        }
        let mut merged = LatencyStats::new();
        for h in handles {
            let stats = h.await.unwrap();
            merged.merge(&stats);
        }
        (
            merged.median_us() / 1000.0,
            merged.percentile(99.0) / 1000.0,
            merged.percentile(99.9) / 1000.0,
        )
    })
}

fn record_delays(records: &[kdstorage::RecordView], stats: &mut LatencyStats) {
    let now_us = sim::now().as_nanos() / 1000;
    for rv in records {
        let json = std::str::from_utf8(&rv.record.value).expect("utf8");
        let event = kafkadirect::events::TrafficEvent::from_json(json).expect("json");
        stats.record(Duration::from_micros(
            now_us.saturating_sub(event.timestamp_us),
        ));
    }
}

fn main() {
    let systems = [
        ("Kafka", SystemKind::Kafka),
        ("OSU Kafka", SystemKind::OsuKafka),
        ("KafkaDirect", SystemKind::KafkaDirect),
    ];
    for (wname, workload) in [
        ("constant-rate", Workload::ConstantRate),
        ("periodic-burst", Workload::PeriodicBurst),
    ] {
        for replicated in [false, true] {
            println!();
            println!(
                "# Fig 21 — event delay (ms), {wname} publisher, {} replication",
                if replicated { "2x" } else { "no" }
            );
            println!("# paper: KafkaDirect lowest everywhere (~3.3x lower on average);");
            println!("#        burst spikes absorbed without unavailability.");
            let mut table = Table::new(&["system", "p50_ms", "p99_ms", "p999_ms"]);
            for (name, system) in systems {
                let (p50, p99, p999) = run_cell(system, workload, replicated);
                table.row(vec![name.into(), fmt(p50), fmt(p99), fmt(p999)]);
            }
            table.print();
        }
    }
}
