//! Figures 18, 19, 20 and the §5.3 empty-fetch tables — the consume
//! datapath. Run with `cargo bench --bench fig18_20_consume`.

use kafkadirect::{SimCluster, SystemKind};
use kdbench::harness::{consume_bandwidth_mibps, consume_latency_us, end_to_end_latency_us};
use kdbench::stats::{fmt, size_label, Table};
use kdclient::{ClientTransport, RdmaConsumer, TcpConsumer};

fn fig18() {
    println!();
    println!("# Fig 18 — Consume latency (us) on 10k preloaded records");
    println!("# paper: Kafka >=200 us at all sizes; KafkaDirect 4.2 us (50x).");
    let sizes = [32, 128, 512, 2048, 8192, 32768, 131072];
    let mut table = Table::new(&["size", "Kafka", "KafkaDirect"]);
    for size in sizes {
        // Preload count scaled down for big records (bounded memory).
        let count = (2_000_000 / size.max(64)).clamp(50, 2000);
        table.row(vec![
            size_label(size),
            fmt(consume_latency_us(SystemKind::Kafka, size, count)),
            fmt(consume_latency_us(SystemKind::KafkaDirect, size, count)),
        ]);
    }
    table.print();
}

fn empty_fetch_latency() {
    println!();
    println!("# §5.3 table — Latency of empty fetch requests (us)");
    println!("# paper: TCP fetch >=200 us; RDMA metadata-slot read ~2.5 us.");
    let rt = sim::Runtime::new();
    let tcp = rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::Kafka, 1);
        cluster.create_topic("t", 1, 1).await;
        let node = cluster.add_client_node("c");
        let mut consumer =
            TcpConsumer::connect(&node, cluster.bootstrap(), ClientTransport::Tcp, "t", 0, 0)
                .await
                .unwrap();
        let mut stats = kdbench::stats::LatencyStats::new();
        for _ in 0..40 {
            let t0 = sim::now();
            assert!(consumer.poll().await.unwrap().is_empty());
            stats.record(sim::now() - t0);
        }
        stats.median_us()
    });
    let rt = sim::Runtime::new();
    let rdma = rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let node = cluster.add_client_node("c");
        let mut consumer = RdmaConsumer::connect(&node, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        consumer.check_new_data().await.unwrap(); // access grant
        let mut stats = kdbench::stats::LatencyStats::new();
        for _ in 0..200 {
            let t0 = sim::now();
            consumer.check_new_data().await.unwrap();
            stats.record(sim::now() - t0);
        }
        stats.median_us()
    });
    let mut table = Table::new(&["system", "empty_fetch_us"]);
    table.row(vec!["Kafka (TCP fetch)".into(), fmt(tcp)]);
    table.row(vec!["KafkaDirect (slot read)".into(), fmt(rdma)]);
    table.print();
}

fn fig19() {
    println!();
    println!("# Fig 19 — End-to-end latency (us): produce then fetch one record");
    println!("# paper: Kafka ~600 us; either RDMA datapath ~-200 us; both ~100 us.");
    let sizes = [32, 128, 512, 2048, 8192, 65536];
    let systems: Vec<(&str, SystemKind)> = vec![
        ("Kafka", SystemKind::Kafka),
        ("OSU", SystemKind::OsuKafka),
        (
            "RDMA Prod.",
            SystemKind::KafkaDirectWith(kafkadirect::RdmaToggles {
                produce: true,
                replicate: false,
                consume: false,
            }),
        ),
        (
            "RDMA Cons.",
            SystemKind::KafkaDirectWith(kafkadirect::RdmaToggles {
                produce: false,
                replicate: false,
                consume: true,
            }),
        ),
        (
            "Prod.+Cons.",
            SystemKind::KafkaDirectWith(kafkadirect::RdmaToggles {
                produce: true,
                replicate: false,
                consume: true,
            }),
        ),
    ];
    let mut header = vec!["size"];
    header.extend(systems.iter().map(|(n, _)| *n));
    let mut table = Table::new(&header);
    for size in sizes {
        let mut row = vec![size_label(size)];
        for (_, system) in &systems {
            row.push(fmt(end_to_end_latency_us(*system, size, 25)));
        }
        table.row(row);
    }
    table.print();
}

fn fig20() {
    println!();
    println!("# Fig 20 — Consume goodput (MiB/s), one record per fetch for TCP systems");
    println!("# paper: Kafka/OSU <150 MiB/s; KafkaDirect ~1 GiB/s at 32K (9x).");
    let sizes = [32, 128, 512, 2048, 8192, 32768];
    let mut table = Table::new(&["size", "Kafka", "OSU Kafka", "KafkaDirect"]);
    for size in sizes {
        let count = (4_000_000 / size.max(256)).clamp(100, 4000);
        table.row(vec![
            size_label(size),
            fmt(consume_bandwidth_mibps(SystemKind::Kafka, size, count)),
            fmt(consume_bandwidth_mibps(SystemKind::OsuKafka, size, count)),
            fmt(consume_bandwidth_mibps(SystemKind::KafkaDirect, size, count)),
        ]);
    }
    table.print();
}

fn empty_fetch_throughput() {
    println!();
    println!("# §5.3 table — Empty fetch throughput per broker (requests/s)");
    println!("# paper: Kafka 53K/s (TCP module bound); KafkaDirect 8,300K/s (156x),");
    println!("#        with zero broker CPU involvement.");
    // TCP: many consumers hammer an empty topic; count served fetches.
    let rt = sim::Runtime::new();
    let (tcp_rate, tcp_busy) = rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::Kafka, 1);
        cluster.create_topic("t", 1, 1).await;
        let mut handles = Vec::new();
        for c in 0..12 {
            let node = cluster.add_client_node(&format!("c{c}"));
            let bootstrap = cluster.bootstrap();
            handles.push(sim::spawn(async move {
                let mut consumer =
                    TcpConsumer::connect(&node, bootstrap, ClientTransport::Tcp, "t", 0, 0)
                        .await
                        .unwrap();
                for _ in 0..120 {
                    let _ = consumer.poll().await;
                }
            }));
        }
        let before = cluster.broker(0).metrics();
        let t0 = sim::now();
        for h in handles {
            h.await.unwrap();
        }
        let after = cluster.broker(0).metrics();
        let served = after.empty_fetches - before.empty_fetches;
        (
            served as f64 / (sim::now() - t0).as_secs_f64(),
            after.worker_busy_ns + after.net_busy_ns,
        )
    });
    // RDMA: consumers poll metadata slots; count NIC-served reads.
    let rt = sim::Runtime::new();
    let (rdma_rate, rdma_busy) = rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let mut consumers = Vec::new();
        for c in 0..24 {
            let node = cluster.add_client_node(&format!("c{c}"));
            let mut consumer = RdmaConsumer::connect(&node, cluster.bootstrap(), "t", 0, 0)
                .await
                .unwrap();
            consumer.check_new_data().await.unwrap();
            consumers.push(consumer);
        }
        let busy0 = {
            let m = cluster.broker(0).metrics();
            m.worker_busy_ns + m.net_busy_ns
        };
        let reads0 = cluster.broker(0).nic_stats().reads_served;
        let t0 = sim::now();
        let mut handles = Vec::new();
        for mut consumer in consumers {
            handles.push(sim::spawn(async move {
                for _ in 0..3000 {
                    consumer.check_new_data().await.unwrap();
                }
            }));
        }
        for h in handles {
            h.await.unwrap();
        }
        let reads = cluster.broker(0).nic_stats().reads_served - reads0;
        let busy = {
            let m = cluster.broker(0).metrics();
            m.worker_busy_ns + m.net_busy_ns
        };
        (
            reads as f64 / (sim::now() - t0).as_secs_f64(),
            busy - busy0,
        )
    });
    let mut table = Table::new(&["system", "empty_fetches_per_s", "broker_cpu_ns"]);
    table.row(vec![
        "Kafka (12 TCP consumers)".into(),
        fmt(tcp_rate),
        tcp_busy.to_string(),
    ]);
    table.row(vec![
        "KafkaDirect (24 RDMA consumers)".into(),
        fmt(rdma_rate),
        rdma_busy.to_string(),
    ]);
    table.print();
    println!("# speedup: {:.0}x", rdma_rate / tcp_rate);
}

fn main() {
    fig18();
    empty_fetch_latency();
    fig19();
    fig20();
    empty_fetch_throughput();
}
