//! Criterion benchmarks of the substrate itself — these measure *real*
//! wall-clock performance of the building blocks (the figure harnesses
//! measure virtual time instead). Run with
//! `cargo bench --bench criterion_substrate`.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use kdstorage::crc32c::crc32c;
use kdstorage::record::{decode_batch, verify_batch, BatchBuilder};
use kdstorage::{Log, LogConfig, Record};

fn bench_crc32c(c: &mut Criterion) {
    let mut g = c.benchmark_group("crc32c");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xABu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_function(format!("{size}B"), |b| {
            b.iter(|| crc32c(std::hint::black_box(&data)));
        });
    }
    g.finish();
}

fn bench_batch_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("record_batch");
    let mut builder = BatchBuilder::new(7);
    for i in 0..32 {
        builder.append(&Record::value(vec![i as u8; 256]).with_timestamp(i));
    }
    let bytes = builder.build().unwrap();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("build_32x256B", |b| {
        b.iter(|| {
            let mut builder = BatchBuilder::new(7);
            for i in 0..32 {
                builder.append(&Record::value(vec![i as u8; 256]).with_timestamp(i));
            }
            builder.build().unwrap()
        });
    });
    g.bench_function("verify_32x256B", |b| {
        b.iter(|| verify_batch(std::hint::black_box(&bytes)).unwrap());
    });
    g.bench_function("decode_32x256B", |b| {
        b.iter(|| decode_batch(std::hint::black_box(&bytes)).unwrap());
    });
    g.finish();
}

fn bench_log_append(c: &mut Criterion) {
    let mut g = c.benchmark_group("log");
    let batch = {
        let mut builder = BatchBuilder::new(7);
        builder.append(&Record::value(vec![5u8; 1024]));
        builder.build().unwrap()
    };
    g.throughput(Throughput::Bytes(batch.len() as u64));
    g.bench_function("append_1KiB", |b| {
        b.iter_batched(
            || {
                Log::new(LogConfig {
                    segment_size: 8 * 1024 * 1024,
                    max_batch_size: 1024 * 1024,
                })
            },
            |log| {
                for _ in 0..1000 {
                    log.append_batch(std::hint::black_box(&batch)).unwrap();
                }
            },
            BatchSize::LargeInput,
        );
    });
    g.finish();
}

fn bench_sim_executor(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");
    g.bench_function("spawn_join_1000", |b| {
        b.iter(|| {
            let rt = sim::Runtime::new();
            rt.block_on(async {
                let handles: Vec<_> = (0..1000).map(|i| sim::spawn(async move { i })).collect();
                let mut sum = 0u64;
                for h in handles {
                    sum += h.await.unwrap();
                }
                sum
            })
        });
    });
    g.bench_function("timer_churn_10000", |b| {
        b.iter(|| {
            let rt = sim::Runtime::new();
            rt.block_on(async {
                for i in 0..10_000u64 {
                    sim::time::sleep(std::time::Duration::from_nanos(i % 97)).await;
                }
                sim::now().as_nanos()
            })
        });
    });
    g.finish();
}

fn bench_fabric_events(c: &mut Criterion) {
    // End-to-end simulator event rate: RDMA writes through the full verbs
    // model (the "how fast does the simulator run" number).
    let mut g = c.benchmark_group("fabric");
    g.bench_function("rdma_write_ops_200", |b| {
        b.iter(|| {
            let rt = sim::Runtime::new();
            rt.block_on(async {
                let f = netsim::Fabric::new(netsim::profile::Profile::testbed());
                let a = f.add_node("a");
                let bn = f.add_node("b");
                let nic_a = rnic::RNic::new(&a);
                let nic_b = rnic::RNic::new(&bn);
                let mut listener = rnic::RdmaListener::bind(&nic_b, 1);
                let b_send = nic_b.create_cq(64);
                let b_recv = nic_b.create_cq(64);
                let nic_b2 = nic_b.clone();
                let accept = sim::spawn(async move {
                    let inc = listener.accept().await.unwrap();
                    inc.accept(&nic_b2, b_send, b_recv, rnic::QpOptions::default())
                });
                let a_send = nic_a.create_cq(4096);
                let a_recv = nic_a.create_cq(64);
                let qp = nic_a
                    .connect(bn.id, 1, a_send.clone(), a_recv, rnic::QpOptions::default())
                    .await
                    .unwrap();
                let _qp_b = accept.await.unwrap();
                let mr = nic_b.reg_mr(rnic::ShmBuf::zeroed(1 << 20), rnic::Access::all());
                let payload = rnic::ShmBuf::zeroed(256);
                for i in 0..200u64 {
                    qp.post_send(rnic::SendWr {
                        wr_id: i,
                        op: rnic::WorkRequest::Write {
                            local: payload.as_slice(),
                            remote_addr: mr.addr(),
                            rkey: mr.rkey(),
                        },
                        signaled: i == 199,
                    })
                    .unwrap();
                }
                a_send.next().await.unwrap();
            })
        });
    });
    g.finish();
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_crc32c, bench_batch_codec, bench_log_append, bench_sim_executor, bench_fabric_events
);
criterion_main!(benches);
