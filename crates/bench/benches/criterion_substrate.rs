//! Wall-clock benchmarks of the substrate itself — these measure *real*
//! performance of the building blocks (the figure harnesses measure virtual
//! time instead). Run with `cargo bench --bench criterion_substrate`.
//!
//! Uses a small in-tree timing harness (median of several timed batches over
//! `std::time::Instant`) instead of an external benchmark framework, so the
//! workspace builds fully offline.

use std::time::{Duration, Instant};

use kdstorage::crc32c::crc32c;
use kdstorage::record::{decode_batch, verify_batch, BatchBuilder};
use kdstorage::{Log, LogConfig, Record};

/// Runs `f` in timed batches until ~`budget` has elapsed (after one warm-up
/// batch) and reports the median per-iteration time plus optional throughput.
fn bench(name: &str, bytes_per_iter: Option<u64>, mut f: impl FnMut()) {
    let budget = Duration::from_millis(600);
    // Calibrate a batch size targeting ~20ms per batch.
    let mut batch = 1u64;
    loop {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        let dt = t0.elapsed();
        if dt >= Duration::from_millis(20) || batch >= 1 << 24 {
            break;
        }
        batch *= 2;
    }
    let mut samples = Vec::new();
    let start = Instant::now();
    while start.elapsed() < budget || samples.len() < 3 {
        let t0 = Instant::now();
        for _ in 0..batch {
            f();
        }
        samples.push(t0.elapsed().as_nanos() as u64 / batch);
        if samples.len() >= 50 {
            break;
        }
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    match bytes_per_iter {
        Some(b) if median > 0 => {
            let mibps = b as f64 * 1e9 / median as f64 / (1024.0 * 1024.0);
            println!("{name:<40} {median:>12} ns/iter {mibps:>10.1} MiB/s");
        }
        _ => println!("{name:<40} {median:>12} ns/iter"),
    }
}

fn bench_crc32c() {
    for size in [64usize, 4096, 65536] {
        let data = vec![0xABu8; size];
        bench(&format!("crc32c/{size}B"), Some(size as u64), || {
            std::hint::black_box(crc32c(std::hint::black_box(&data)));
        });
    }
}

fn bench_batch_codec() {
    let mut builder = BatchBuilder::new(7);
    for i in 0..32 {
        builder.append(&Record::value(vec![i as u8; 256]).with_timestamp(i));
    }
    let bytes = builder.build().unwrap();
    let len = bytes.len() as u64;
    bench("record_batch/build_32x256B", Some(len), || {
        let mut builder = BatchBuilder::new(7);
        for i in 0..32 {
            builder.append(&Record::value(vec![i as u8; 256]).with_timestamp(i));
        }
        std::hint::black_box(builder.build().unwrap());
    });
    bench("record_batch/verify_32x256B", Some(len), || {
        std::hint::black_box(verify_batch(std::hint::black_box(&bytes)).unwrap());
    });
    bench("record_batch/decode_32x256B", Some(len), || {
        std::hint::black_box(decode_batch(std::hint::black_box(&bytes)).unwrap());
    });
}

fn bench_log_append() {
    let batch = {
        let mut builder = BatchBuilder::new(7);
        builder.append(&Record::value(vec![5u8; 1024]));
        builder.build().unwrap()
    };
    bench(
        "log/append_1KiB_x1000",
        Some(batch.len() as u64 * 1000),
        || {
            let log = Log::new(LogConfig {
                segment_size: 8 * 1024 * 1024,
                max_batch_size: 1024 * 1024,
            });
            for _ in 0..1000 {
                log.append_batch(std::hint::black_box(&batch)).unwrap();
            }
        },
    );
}

fn bench_sim_executor() {
    bench("sim/spawn_join_1000", None, || {
        let rt = sim::Runtime::new();
        let sum = rt.block_on(async {
            let handles: Vec<_> = (0..1000).map(|i| sim::spawn(async move { i })).collect();
            let mut sum = 0u64;
            for h in handles {
                sum += h.await.unwrap();
            }
            sum
        });
        std::hint::black_box(sum);
    });
    bench("sim/timer_churn_10000", None, || {
        let rt = sim::Runtime::new();
        let t = rt.block_on(async {
            for i in 0..10_000u64 {
                sim::time::sleep(std::time::Duration::from_nanos(i % 97)).await;
            }
            sim::now().as_nanos()
        });
        std::hint::black_box(t);
    });
}

fn bench_fabric_events() {
    // End-to-end simulator event rate: RDMA writes through the full verbs
    // model (the "how fast does the simulator run" number).
    bench("fabric/rdma_write_ops_200", None, || {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = netsim::Fabric::new(netsim::profile::Profile::testbed());
            let a = f.add_node("a");
            let bn = f.add_node("b");
            let nic_a = rnic::RNic::new(&a);
            let nic_b = rnic::RNic::new(&bn);
            let mut listener = rnic::RdmaListener::bind(&nic_b, 1);
            let b_send = nic_b.create_cq(64);
            let b_recv = nic_b.create_cq(64);
            let nic_b2 = nic_b.clone();
            let accept = sim::spawn(async move {
                let inc = listener.accept().await.unwrap();
                inc.accept(&nic_b2, b_send, b_recv, rnic::QpOptions::default())
            });
            let a_send = nic_a.create_cq(4096);
            let a_recv = nic_a.create_cq(64);
            let qp = nic_a
                .connect(bn.id, 1, a_send.clone(), a_recv, rnic::QpOptions::default())
                .await
                .unwrap();
            let _qp_b = accept.await.unwrap();
            let mr = nic_b.reg_mr(rnic::ShmBuf::zeroed(1 << 20), rnic::Access::all());
            let payload = rnic::ShmBuf::zeroed(256);
            for i in 0..200u64 {
                qp.post_send(rnic::SendWr {
                    wr_id: i,
                    op: rnic::WorkRequest::Write {
                        local: payload.as_slice(),
                        remote_addr: mr.addr(),
                        rkey: mr.rkey(),
                    },
                    signaled: i == 199,
                    trace: None,
                })
                .unwrap();
            }
            a_send.next().await.unwrap();
        })
    });
}

fn main() {
    println!("substrate wall-clock benchmarks");
    bench_crc32c();
    bench_batch_codec();
    bench_log_append();
    bench_sim_executor();
    bench_fabric_events();
}
