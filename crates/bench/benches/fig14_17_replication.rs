//! Figures 14–17 — the replication datapath (§5.2).
//!
//! Fig 14: produce latency under 3-way replication for five configurations.
//! Fig 15: produce goodput under 3-way replication.
//! Fig 16: goodput of 32 KiB records vs replication factor.
//! Fig 17: goodput of 32-byte produces vs the push-replication batch cap.
//! Run with `cargo bench --bench fig14_17_replication`.

use kafkadirect::{RdmaToggles, SystemKind};
use kdbench::harness::{produce_bandwidth_mibps, produce_latency_us, ProduceOpts, ProducerMode};
use kdbench::stats::{fmt, size_label, Table};

fn kd(produce: bool, replicate: bool) -> SystemKind {
    SystemKind::KafkaDirectWith(RdmaToggles {
        produce,
        replicate,
        consume: false,
    })
}

/// The five configurations of Figs 14/15.
fn configs() -> Vec<(&'static str, SystemKind, ProducerMode)> {
    vec![
        ("Kafka", SystemKind::Kafka, ProducerMode::Rpc),
        ("OSU", SystemKind::OsuKafka, ProducerMode::Rpc),
        ("RDMA Prod.", kd(true, false), ProducerMode::RdmaExclusive),
        ("RDMA Repl.", kd(false, true), ProducerMode::Rpc),
        ("Prod.+Repl.", kd(true, true), ProducerMode::RdmaExclusive),
    ]
}

fn fig14() {
    println!();
    println!("# Fig 14 — Produce latency (us) with 3-way replication (acks=all)");
    println!("# paper: Kafka ~700 us small; either RDMA module alone ~-300 us;");
    println!("#        both modules ~100 us (7x over Kafka).");
    let sizes = [32, 128, 512, 2048, 8192, 32768, 131072];
    let mut header = vec!["size"];
    header.extend(configs().iter().map(|(n, _, _)| *n));
    let mut table = Table::new(&header);
    for size in sizes {
        let mut row = vec![size_label(size)];
        for (_, system, mode) in configs() {
            let mut o = ProduceOpts::new(system, mode, size);
            o.brokers = 3;
            o.replication = 3;
            row.push(fmt(produce_latency_us(&o, 30)));
        }
        table.row(row);
    }
    table.print();
}

fn fig15() {
    println!();
    println!("# Fig 15 — Produce goodput (MiB/s) with 3-way replication");
    println!("# paper: KafkaDirect (both modules) 9-14x Kafka; RDMA Prod. alone");
    println!("#        bottlenecked by pull replication (~500 MiB/s @32K).");
    let sizes = [32, 128, 512, 2048, 8192, 32768];
    let mut header = vec!["size"];
    header.extend(configs().iter().map(|(n, _, _)| *n));
    let mut table = Table::new(&header);
    for size in sizes {
        let mut row = vec![size_label(size)];
        for (_, system, mode) in configs() {
            let mut o = ProduceOpts::new(system, mode, size);
            o.brokers = 3;
            o.replication = 3;
            o.records = ((2 << 20) / size.max(512)).clamp(150, 3000);
            o.window = 32;
            row.push(fmt(produce_bandwidth_mibps(&o)));
        }
        table.row(row);
    }
    table.print();
}

fn fig16() {
    println!();
    println!("# Fig 16 — Produce goodput of 32 KiB records vs replication factor (MiB/s)");
    println!("# paper: RDMA Prod. 1.5 GiB/s at RF=1 dropping to ~0.5 with TCP pull;");
    println!("#        RDMA Prod.+Repl. sustains the rate (14x Kafka).");
    let mut table = Table::new(&["RF", "Kafka", "RDMA Prod.", "RDMA Repl.", "Prod.+Repl."]);
    for rf in 1..=4u32 {
        let mk = |system, mode| {
            let mut o = ProduceOpts::new(system, mode, 32 * 1024);
            o.brokers = 4;
            o.replication = rf;
            o.records = 600;
            o.window = 32;
            produce_bandwidth_mibps(&o)
        };
        table.row(vec![
            rf.to_string(),
            fmt(mk(SystemKind::Kafka, ProducerMode::Rpc)),
            fmt(mk(kd(true, false), ProducerMode::RdmaExclusive)),
            fmt(mk(kd(false, true), ProducerMode::Rpc)),
            fmt(mk(kd(true, true), ProducerMode::RdmaExclusive)),
        ]);
    }
    table.print();
}

fn fig17() {
    println!();
    println!("# Fig 17 — Goodput of 32-byte produces vs replication batch cap (MiB/s)");
    println!("# paper: no batching ~3.8 MiB/s; grows with the cap, plateaus ~5.2 MiB/s");
    println!("#        (bottlenecked by the committing API worker, not the wire).");
    let mut table = Table::new(&["batch", "2-way repl", "3-way repl"]);
    for batch in [32u32, 64, 128, 256, 512, 1024] {
        let mk = |rf: u32| {
            let system = kd(true, true);
            let rt = sim::Runtime::new();
            rt.block_on(async move {
                let mut cfg = system.broker_config();
                cfg.replication_max_batch = batch;
                cfg.log = kdstorage::LogConfig {
                    segment_size: 32 * 1024 * 1024,
                    max_batch_size: 1024 * 1024,
                };
                // Boot a custom cluster with the batch cap.
                let fabric = netsim::Fabric::new(netsim::profile::Profile::testbed());
                let mut peers = Vec::new();
                let mut nodes = Vec::new();
                for i in 0..rf {
                    let node = fabric.add_node(&format!("b{i}"));
                    peers.push(kdwire::BrokerAddr {
                        node: node.id.0,
                        port: cfg.tcp_port,
                        rdma_port: cfg.rdma_port,
                    });
                    nodes.push(node);
                }
                let _brokers: Vec<_> = nodes
                    .iter()
                    .map(|n| kdbroker::Broker::start(n, cfg.clone(), peers.clone()))
                    .collect();
                let admin_node = fabric.add_node("admin");
                let admin = kdclient::Admin::connect(&admin_node, peers[0]).await.unwrap();
                admin.create_topic("bench", 1, rf).await.unwrap();
                let cnode = fabric.add_node("client");
                let mut producer =
                    kdclient::RdmaProducer::connect(&cnode, peers[0], "bench", 0, false)
                        .await
                        .unwrap();
                let record = kdstorage::Record::value(vec![7u8; 32]);
                // Windowed pipelined produce of unbatched 32-byte records.
                let count = 4000;
                let t0 = sim::now();
                let mut inflight = std::collections::VecDeque::new();
                for _ in 0..count {
                    if inflight.len() >= 32 {
                        let _ = inflight.pop_front().unwrap().await;
                    }
                    inflight.push_back(producer.send_pipelined(&record).await.unwrap());
                }
                while let Some(rx) = inflight.pop_front() {
                    let _ = rx.await;
                }
                (count * 32) as f64 / (sim::now() - t0).as_secs_f64() / (1024.0 * 1024.0)
            })
        };
        table.row(vec![size_label(batch as usize), fmt(mk(2)), fmt(mk(3))]);
    }
    table.print();
}

fn main() {
    fig14();
    fig15();
    fig16();
    fig17();
}
