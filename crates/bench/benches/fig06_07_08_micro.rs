//! Figures 6, 7, 8 — the §4 C/C++ microbenchmarks against the simulated
//! verbs: RDMA produce coordination, notification approaches, and write
//! batching. Run with `cargo bench --bench fig06_07_08_micro`.

use kdbench::micro::{fig6_goodput_gibps, fig7_bandwidth_gibps, fig7_latency_us, fig8_batching, MicroMode, NotifyMode};
use kdbench::stats::{fmt, size_label, Table};

fn fig6() {
    println!();
    println!("# Fig 6 — Aggregated Write goodput of RDMA produce approaches (GiB/s)");
    println!("# paper: exclusive highest; atomics-based reach it only >= ~32 KiB;");
    println!("#        FAA beats CAS under contention (atomic cap 2.68 Mops/s).");
    let sizes = [64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072, 262144];
    let mut table = Table::new(&[
        "size",
        "Excl 1P",
        "FAA 1P",
        "FAA 2P",
        "FAA 5P",
        "CAS 1P",
        "CAS 5P",
    ]);
    for size in sizes {
        // Enough bytes for a steady-state measurement, capped for tiny sizes.
        let total = (size * 4000).clamp(1 << 20, 96 << 20);
        let row = vec![
            size_label(size),
            fmt(fig6_goodput_gibps(MicroMode::Exclusive, 1, size, total)),
            fmt(fig6_goodput_gibps(MicroMode::SharedFaa, 1, size, total)),
            fmt(fig6_goodput_gibps(MicroMode::SharedFaa, 2, size, total)),
            fmt(fig6_goodput_gibps(MicroMode::SharedFaa, 5, size, total)),
            fmt(fig6_goodput_gibps(MicroMode::SharedCas, 1, size, total)),
            fmt(fig6_goodput_gibps(MicroMode::SharedCas, 5, size, total)),
        ];
        table.row(row);
    }
    table.print();
}

fn fig7() {
    println!();
    println!("# Fig 7 (left) — Notification latency (us), one-way to receiver completion");
    println!("# paper: WriteWithImm ~1.5 us small; Write+Send ~1 us slower.");
    let sizes = [8, 16, 32, 64, 128, 256, 512, 1024];
    let mut table = Table::new(&["size", "WriteWithImm", "W+S 4B", "W+S 16B", "W+S 128B", "W+S 512B"]);
    for size in sizes {
        table.row(vec![
            size_label(size),
            fmt(fig7_latency_us(NotifyMode::WriteWithImm, size, 30)),
            fmt(fig7_latency_us(NotifyMode::WriteSend(4), size, 30)),
            fmt(fig7_latency_us(NotifyMode::WriteSend(16), size, 30)),
            fmt(fig7_latency_us(NotifyMode::WriteSend(128), size, 30)),
            fmt(fig7_latency_us(NotifyMode::WriteSend(512), size, 30)),
        ]);
    }
    table.print();

    println!();
    println!("# Fig 7 (right) — Write goodput under each notification approach (GiB/s)");
    println!("# paper: ~2.4 GiB/s small; WriteWithImm ahead around 1 KiB; converges by 32 KiB.");
    let sizes = [256, 512, 1024, 2048, 4096, 8192, 16384, 32768];
    let mut table = Table::new(&["size", "WriteWithImm", "W+S 4B", "W+S 128B", "W+S 512B"]);
    for size in sizes {
        let count = ((16 << 20) / size).clamp(2000, 20000);
        table.row(vec![
            size_label(size),
            fmt(fig7_bandwidth_gibps(NotifyMode::WriteWithImm, size, count)),
            fmt(fig7_bandwidth_gibps(NotifyMode::WriteSend(4), size, count)),
            fmt(fig7_bandwidth_gibps(NotifyMode::WriteSend(128), size, count)),
            fmt(fig7_bandwidth_gibps(NotifyMode::WriteSend(512), size, count)),
        ]);
    }
    table.print();
}

fn fig8() {
    println!();
    println!("# Fig 8 — Batching 64-byte writes: latency (us, log-scale in paper) and goodput (GiB/s)");
    println!("# paper: no batching ~2.4 us / ~0.5 GiB/s; goodput grows to 6 GiB/s;");
    println!("#        latency flat for small batches then rises past ~1-2 KiB.");
    let batches = [64, 128, 256, 512, 1024, 2048, 4096];
    let mut table = Table::new(&["batch", "latency_us", "goodput_GiB/s"]);
    for batch in batches {
        let records = (batch * 4000 / 64).clamp(4096, 200_000);
        let (lat, bw) = fig8_batching(batch, records);
        table.row(vec![size_label(batch), fmt(lat), fmt(bw)]);
    }
    table.print();
}

fn main() {
    // `cargo bench` passes flags like --bench; this harness ignores them.
    fig6();
    fig7();
    fig8();
}
