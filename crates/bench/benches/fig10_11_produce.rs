//! Figures 10 & 11 — the produce datapath with replication disabled (§5.1).
//! Four systems: Kafka, OSU Kafka, exclusive KafkaDirect, shared KafkaDirect.
//! Run with `cargo bench --bench fig10_11_produce`.

use kafkadirect::SystemKind;
use kdbench::harness::{
    capture_trace, maybe_print_telemetry, maybe_write_series, maybe_write_trace,
    produce_bandwidth_mibps, produce_latency_us, produce_telemetry, ProduceOpts, ProducerMode,
};
use kdbench::stats::{fmt, size_label, Table};

const LAT_SIZES: [usize; 13] = [
    32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768, 65536, 131072,
];
const BW_SIZES: [usize; 11] = [32, 64, 128, 256, 512, 1024, 2048, 4096, 8192, 16384, 32768];

fn fig10() {
    println!();
    println!("# Fig 10 — Produce latency (us), no replication, no batching");
    println!("# paper: Kafka ~300+ us small; OSU ~90 us lower; KafkaDirect ~90 us;");
    println!("#        shared ~2.5 us above exclusive (one FAA).");
    let mut table = Table::new(&["size", "Kafka", "OSU Kafka", "Excl KD", "Shared KD"]);
    for size in LAT_SIZES {
        let samples = 40;
        let kafka = produce_latency_us(
            &ProduceOpts::new(SystemKind::Kafka, ProducerMode::Rpc, size),
            samples,
        );
        let osu = produce_latency_us(
            &ProduceOpts::new(SystemKind::OsuKafka, ProducerMode::Rpc, size),
            samples,
        );
        let excl = produce_latency_us(
            &ProduceOpts::new(SystemKind::KafkaDirect, ProducerMode::RdmaExclusive, size),
            samples,
        );
        let shared = produce_latency_us(
            &ProduceOpts::new(SystemKind::KafkaDirect, ProducerMode::RdmaShared, size),
            samples,
        );
        table.row(vec![
            size_label(size),
            fmt(kafka),
            fmt(osu),
            fmt(excl),
            fmt(shared),
        ]);
    }
    table.print();
}

fn fig11() {
    println!();
    println!("# Fig 11 — Produce goodput to one partition (MiB/s), no replication");
    println!("# paper: Kafka lowest (280 MiB/s @32K); OSU ~2x Kafka @512B;");
    println!("#        exclusive ~10x @512B, 1.65 GiB/s @32K; shared ~5x.");
    let mut table = Table::new(&["size", "Kafka", "OSU Kafka", "Excl KD", "Shared KD"]);
    for size in BW_SIZES {
        let records = (6 << 20) / size.max(256); // enough for steady state
        let mk = |system, mode| {
            let mut o = ProduceOpts::new(system, mode, size);
            o.records = records.clamp(200, 8000);
            o.window = 32;
            produce_bandwidth_mibps(&o)
        };
        table.row(vec![
            size_label(size),
            fmt(mk(SystemKind::Kafka, ProducerMode::Rpc)),
            fmt(mk(SystemKind::OsuKafka, ProducerMode::Rpc)),
            fmt(mk(SystemKind::KafkaDirect, ProducerMode::RdmaExclusive)),
            fmt(mk(SystemKind::KafkaDirect, ProducerMode::RdmaShared)),
        ]);
    }
    table.print();
}

/// Critical-path attribution for one representative run per datapath: where
/// do the end-to-end nanoseconds actually go? Stage sums reconcile exactly
/// with the measured lifeline totals (the analyzer partitions every
/// inter-event gap), so "dominant stage" is an accounting fact, not an
/// estimate.
fn critpath() {
    for (label, system) in [
        ("Kafka (TCP) e2e 256B", SystemKind::Kafka),
        ("KafkaDirect e2e 256B", SystemKind::KafkaDirect),
    ] {
        let events = capture_trace(system, 256, 8);
        let report = kdtelem::critpath::analyze(&events);
        println!();
        println!("# critical path — {label}");
        print!("{}", report.to_table());
        assert!(
            report.ok(),
            "critpath stage sums must reconcile: {:?}",
            report.errors
        );
    }
}

fn main() {
    fig10();
    fig11();
    critpath();
    // KD_TELEM=1: dump the instrument readings of one representative run per
    // produce datapath (broker API latency, NIC/link counters, client e2e).
    for (label, system, mode) in [
        ("Kafka produce 512B", SystemKind::Kafka, ProducerMode::Rpc),
        (
            "Exclusive KafkaDirect produce 512B",
            SystemKind::KafkaDirect,
            ProducerMode::RdmaExclusive,
        ),
    ] {
        if std::env::var_os("KD_TELEM").is_some_and(|v| v == "1") {
            let report = produce_telemetry(&ProduceOpts::new(system, mode, 512), 40);
            maybe_print_telemetry(label, &report);
        }
    }
    // KD_TRACE=<path>: export one end-to-end produce→fetch run's lifelines
    // as Chrome trace-event JSON (Perfetto-loadable).
    maybe_write_trace("KafkaDirect e2e 256B", SystemKind::KafkaDirect);
    // KD_SERIES=<path>: export a sampled produce run's virtual-time
    // telemetry series as JSON lines (render with the kdtop binary).
    maybe_write_series("KafkaDirect produce 256B", SystemKind::KafkaDirect);
}
