//! Ablations of KafkaDirect's design choices beyond the paper's headline
//! figures (DESIGN.md §4):
//!
//! * replication credit window (§4.3.2 flow control),
//! * consumer fetch size (§4.4.2 picks 2 KiB),
//! * metadata-slot span vs. subscription count (Fig 9 layout).
//!
//! Run with `cargo bench --bench ablations`.

use std::time::Duration;

use kafkadirect::{Record, SimCluster, SystemKind};
use kdbench::stats::{fmt, size_label, Table};
use kdclient::{RdmaConsumer, RdmaProducer};

/// Credit window vs. replicated produce throughput: too few credits stall
/// the push pipeline; beyond a handful the committing worker dominates.
fn ab_credit_window() {
    println!();
    println!("# Ablation — push-replication credit window (4 KiB records, 2-way)");
    let mut table = Table::new(&["credits", "goodput_MiB/s"]);
    for credits in [1u32, 2, 4, 8, 16, 32] {
        let rt = sim::Runtime::new();
        let mibps = rt.block_on(async move {
            let mut cfg = SystemKind::KafkaDirect.broker_config();
            cfg.replication_credits = credits;
            cfg.log = kdstorage::LogConfig {
                segment_size: 32 * 1024 * 1024,
                max_batch_size: 1024 * 1024,
            };
            let fabric = netsim::Fabric::new(netsim::profile::Profile::testbed());
            let mut peers = Vec::new();
            let mut nodes = Vec::new();
            for i in 0..2 {
                let node = fabric.add_node(&format!("b{i}"));
                peers.push(kdwire::BrokerAddr {
                    node: node.id.0,
                    port: cfg.tcp_port,
                    rdma_port: cfg.rdma_port,
                });
                nodes.push(node);
            }
            let _brokers: Vec<_> = nodes
                .iter()
                .map(|n| kdbroker::Broker::start(n, cfg.clone(), peers.clone()))
                .collect();
            let admin_node = fabric.add_node("admin");
            let admin = kdclient::Admin::connect(&admin_node, peers[0]).await.unwrap();
            admin.create_topic("bench", 1, 2).await.unwrap();
            let cnode = fabric.add_node("client");
            let mut producer = RdmaProducer::connect(&cnode, peers[0], "bench", 0, false)
                .await
                .unwrap();
            let record = Record::value(vec![7u8; 4096]);
            let count = 1500usize;
            let t0 = sim::now();
            let mut inflight = std::collections::VecDeque::new();
            for _ in 0..count {
                if inflight.len() >= 32 {
                    let _ = inflight.pop_front().unwrap().await;
                }
                inflight.push_back(producer.send_pipelined(&record).await.unwrap());
            }
            while let Some(rx) = inflight.pop_front() {
                let _ = rx.await;
            }
            (count * 4096) as f64 / (sim::now() - t0).as_secs_f64() / (1024.0 * 1024.0)
        });
        table.row(vec![credits.to_string(), fmt(mibps)]);
    }
    table.print();
}

/// Consumer fetch size vs. latency and goodput — the §4.4.2 trade-off that
/// motivates the 2 KiB default ("less than 3 us ... more than 5 GiB/sec").
fn ab_fetch_size() {
    println!();
    println!("# Ablation — RDMA consumer fetch size (1 KiB records preloaded)");
    let mut table = Table::new(&["fetch", "read_latency_us", "goodput_MiB/s"]);
    for fetch in [512u32, 1024, 2048, 4096, 8192, 16384, 65536] {
        let rt = sim::Runtime::new();
        let (lat, bw) = rt.block_on(async move {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
            cluster.create_topic("t", 1, 1).await;
            let cnode = cluster.add_client_node("c");
            let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
                .await
                .unwrap();
            let count = 3000usize;
            let record = Record::value(vec![9u8; 1024]);
            let mut inflight = std::collections::VecDeque::new();
            for _ in 0..count {
                if inflight.len() >= 32 {
                    let _ = inflight.pop_front().unwrap().await;
                }
                inflight.push_back(producer.send_pipelined(&record).await.unwrap());
            }
            while let Some(rx) = inflight.pop_front() {
                let _ = rx.await;
            }
            let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
                .await
                .unwrap();
            consumer.fetch_size = fetch;
            let t0 = sim::now();
            let mut seen = 0;
            let mut reads = 0u64;
            while seen < count {
                let before = consumer.stats.data_reads;
                seen += consumer.poll().await.unwrap().len();
                reads += consumer.stats.data_reads - before;
            }
            let elapsed = sim::now() - t0;
            let lat_us = elapsed.as_nanos() as f64 / 1000.0 / reads as f64;
            let bw = (count * 1024) as f64 / elapsed.as_secs_f64() / (1024.0 * 1024.0);
            (lat_us, bw)
        });
        table.row(vec![size_label(fetch as usize), fmt(lat), fmt(bw)]);
    }
    table.print();
}

/// Metadata-slot span: a consumer subscribed to many partitions still
/// refreshes all slots with ONE read; cost grows only with the span bytes
/// (Fig 9's contiguous-region design).
fn ab_slot_span() {
    println!();
    println!("# Ablation — Fig 9 slot layout: per-subscription slot reads (naive)");
    println!("# vs ONE read of the contiguous per-consumer region (MultiRdmaConsumer).");
    let mut table = Table::new(&[
        "partitions",
        "naive_reads",
        "naive_us",
        "fig9_reads",
        "fig9_us",
    ]);
    for parts in [1u32, 2, 4, 8, 16, 32] {
        let rt = sim::Runtime::new();
        let (nr, nus, fr, fus) = rt.block_on(async move {
            let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
            cluster.create_topic("t", parts, 1).await;
            let cnode = cluster.add_client_node("c");
            // Naive: one single-partition consumer per subscription, each
            // refreshing its own slot.
            let mut consumers = Vec::new();
            for p in 0..parts {
                let mut c = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", p, 0)
                    .await
                    .unwrap();
                c.check_new_data().await.unwrap();
                consumers.push(c);
            }
            let t0 = sim::now();
            let mut naive_reads = 0u64;
            for c in consumers.iter_mut() {
                let before = c.stats.slot_reads;
                c.check_new_data().await.unwrap();
                naive_reads += c.stats.slot_reads - before;
            }
            let naive_us = (sim::now() - t0).as_nanos() as f64 / 1000.0;

            // Fig 9: one consumer id, one contiguous slot region, one read.
            let mut mc = kdclient::MultiRdmaConsumer::connect(&cnode, cluster.bootstrap())
                .await
                .unwrap();
            for p in 0..parts {
                mc.subscribe("t", p, 0).await.unwrap();
            }
            let before = mc.stats.slot_reads;
            let t1 = sim::now();
            let _ = mc.poll().await.unwrap();
            let fig9_reads = mc.stats.slot_reads - before;
            let fig9_us = (sim::now() - t1).as_nanos() as f64 / 1000.0;
            (naive_reads, naive_us, fig9_reads, fig9_us)
        });
        table.row(vec![
            parts.to_string(),
            nr.to_string(),
            fmt(nus),
            fr.to_string(),
            fmt(fus),
        ]);
    }
    table.print();
}

/// Shared-order hole timeout: shorter timeouts abort (and recover) faster
/// but risk false aborts under jitter; the produce stream always survives.
fn ab_order_timeout() {
    println!();
    println!("# Ablation — shared-mode hole timeout vs recovery time after a crashed reservation");
    let mut table = Table::new(&["timeout_us", "recovery_us"]);
    for timeout_us in [200u64, 500, 1000, 2000, 5000] {
        let rt = sim::Runtime::new();
        let recovery = rt.block_on(async move {
            let mut cfg = SystemKind::KafkaDirect.broker_config();
            cfg.shared_order_timeout = Duration::from_micros(timeout_us);
            cfg.log = kdstorage::LogConfig {
                segment_size: 32 * 1024 * 1024,
                max_batch_size: 1024 * 1024,
            };
            let fabric = netsim::Fabric::new(netsim::profile::Profile::testbed());
            let node = fabric.add_node("b0");
            let peers = vec![kdwire::BrokerAddr {
                node: node.id.0,
                port: cfg.tcp_port,
                rdma_port: cfg.rdma_port,
            }];
            let _broker = kdbroker::Broker::start(&node, cfg, peers.clone());
            let admin_node = fabric.add_node("admin");
            let admin = kdclient::Admin::connect(&admin_node, peers[0]).await.unwrap();
            admin.create_topic("t", 1, 1).await.unwrap();
            let cnode = fabric.add_node("client");
            let mut good = RdmaProducer::connect(&cnode, peers[0], "t", 0, true)
                .await
                .unwrap();
            good.send(&Record::value(vec![1u8; 64])).await.unwrap();
            // Poison the order stream: reserve via FAA and never write.
            let evil = RdmaProducer::connect(&cnode, peers[0], "t", 0, true)
                .await
                .unwrap();
            evil.poison_reservation(64).await;
            // Time how long the good producer takes to land its next record.
            let t0 = sim::now();
            let mut ok = false;
            for _ in 0..4 {
                if good.send(&Record::value(vec![2u8; 64])).await.is_ok() {
                    ok = true;
                    break;
                }
            }
            assert!(ok, "producer must recover after the abort");
            (sim::now() - t0).as_nanos() as f64 / 1000.0
        });
        table.row(vec![timeout_us.to_string(), fmt(recovery)]);
    }
    table.print();
}

/// EXTENSION (§5.4 future work): offset commit latency and broker CPU, TCP
/// request vs one-sided RDMA write.
fn ab_offset_commit() {
    println!();
    println!("# Extension — offset commit: TCP request vs one-sided RDMA write");
    let rt = sim::Runtime::new();
    let (tcp_us, tcp_cpu, rdma_us, rdma_cpu) = rt.block_on(async {
        let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
        cluster.create_topic("t", 1, 1).await;
        let cnode = cluster.add_client_node("c");
        let mut producer = RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
            .await
            .unwrap();
        for i in 0..5u8 {
            producer.send(&Record::value(vec![i; 32])).await.unwrap();
        }
        let mut consumer = RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
            .await
            .unwrap();
        while consumer.next_records().await.unwrap().is_empty() {}
        consumer.enable_rdma_offset_commit("g").await.unwrap();

        let n = 100;
        let busy0 = cluster.broker(0).metrics().worker_busy_ns;
        let t0 = sim::now();
        for _ in 0..n {
            consumer.commit_offset("g").await.unwrap();
        }
        let tcp_us = (sim::now() - t0).as_nanos() as f64 / 1000.0 / n as f64;
        let tcp_cpu = (cluster.broker(0).metrics().worker_busy_ns - busy0) / n;

        let busy1 = cluster.broker(0).metrics().worker_busy_ns;
        let t1 = sim::now();
        for _ in 0..n {
            consumer.commit_offset_rdma().await.unwrap();
        }
        let rdma_us = (sim::now() - t1).as_nanos() as f64 / 1000.0 / n as f64;
        let rdma_cpu = (cluster.broker(0).metrics().worker_busy_ns - busy1) / n;
        (tcp_us, tcp_cpu, rdma_us, rdma_cpu)
    });
    let mut table = Table::new(&["commit path", "latency_us", "broker_cpu_ns"]);
    table.row(vec!["TCP request".into(), fmt(tcp_us), tcp_cpu.to_string()]);
    table.row(vec!["RDMA write".into(), fmt(rdma_us), rdma_cpu.to_string()]);
    table.print();
    println!("# speedup: {:.0}x, broker CPU eliminated", tcp_us / rdma_us);
}

/// EXTENSION (§4.4.2 alternative): adaptive fetch sizing vs the fixed 2 KiB
/// default for various record sizes.
fn ab_adaptive_fetch() {
    println!();
    println!("# Extension — adaptive fetch sizing (reads per 100 records, goodput MiB/s)");
    let mut table = Table::new(&["record", "fixed_reads", "fixed_MiB/s", "adaptive_reads", "adaptive_MiB/s"]);
    for size in [256usize, 4096, 65536] {
        let run = |adaptive: bool| {
            let rt = sim::Runtime::new();
            rt.block_on(async move {
                let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
                cluster.create_topic("t", 1, 1).await;
                let cnode = cluster.add_client_node("c");
                let mut producer =
                    RdmaProducer::connect(&cnode, cluster.bootstrap(), "t", 0, false)
                        .await
                        .unwrap();
                let n = 100usize;
                for i in 0..n {
                    producer
                        .send(&Record::value(vec![(i % 251) as u8; size]))
                        .await
                        .unwrap();
                }
                let mut consumer =
                    RdmaConsumer::connect(&cnode, cluster.bootstrap(), "t", 0, 0)
                        .await
                        .unwrap();
                consumer.adaptive_fetch = adaptive;
                let t0 = sim::now();
                let mut seen = 0;
                while seen < n {
                    seen += consumer.poll().await.unwrap().len();
                }
                let bw = (n * size) as f64 / (sim::now() - t0).as_secs_f64() / (1024.0 * 1024.0);
                (consumer.stats.data_reads, bw)
            })
        };
        let (fr, fb) = run(false);
        let (ar, ab) = run(true);
        table.row(vec![
            size_label(size),
            fr.to_string(),
            fmt(fb),
            ar.to_string(),
            fmt(ab),
        ]);
    }
    table.print();
}

fn main() {
    ab_credit_window();
    ab_fetch_size();
    ab_slot_span();
    ab_order_timeout();
    ab_offset_commit();
    ab_adaptive_fetch();
}
