//! The cluster harness: a fabric, N broker machines, and client machines,
//! mirroring the paper's 12-node InfiniBand testbed (§5 "Settings").

use kdbroker::Broker;
use kdclient::Admin;
use kdstorage::LogConfig;
use kdwire::BrokerAddr;
use netsim::profile::Profile;
use netsim::{Fabric, NodeHandle};

use crate::systems::SystemKind;

/// Harness options.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    pub profile: Profile,
    pub log: LogConfig,
    /// Overrides the per-system default broker config modifier.
    pub api_workers: Option<usize>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            profile: Profile::testbed(),
            // Experiments default to modest segments so sweeps stay within
            // memory; the paper's 1 GiB is configurable.
            log: LogConfig {
                segment_size: 32 * 1024 * 1024,
                max_batch_size: 1024 * 1024 + 4096,
            },
            api_workers: None,
        }
    }
}

/// A running simulated cluster.
pub struct SimCluster {
    pub fabric: Fabric,
    pub system: SystemKind,
    brokers: Vec<Broker>,
    broker_nodes: Vec<NodeHandle>,
    admin_node: NodeHandle,
    telemetry: kdtelem::Registry,
}

impl SimCluster {
    /// Starts `n` brokers of the given system with default options.
    pub fn start(system: SystemKind, n: usize) -> SimCluster {
        Self::start_with(system, n, ClusterOptions::default())
    }

    /// Starts `n` brokers with explicit options.
    pub fn start_with(system: SystemKind, n: usize, opts: ClusterOptions) -> SimCluster {
        assert!(n > 0);
        // Everything the cluster builds from here on (links, NICs, brokers,
        // clients created on this thread) reports into the ambient registry.
        let telemetry = kdtelem::current();
        let fabric = Fabric::new(opts.profile.clone());
        let mut broker_nodes = Vec::new();
        let mut peers = Vec::new();
        let mut config = system.broker_config().with_log(opts.log.clone());
        if let Some(w) = opts.api_workers {
            config = config.with_workers(w);
        }
        for i in 0..n {
            let node = fabric.add_node(&format!("broker{i}"));
            peers.push(BrokerAddr {
                node: node.id.0,
                port: config.tcp_port,
                rdma_port: config.rdma_port,
            });
            broker_nodes.push(node);
        }
        let brokers = broker_nodes
            .iter()
            .map(|node| Broker::start(node, config.clone(), peers.clone()))
            .collect();
        let admin_node = fabric.add_node("admin");
        SimCluster {
            fabric,
            system,
            brokers,
            broker_nodes,
            admin_node,
            telemetry,
        }
    }

    /// Address of the bootstrap (controller) broker.
    pub fn bootstrap(&self) -> BrokerAddr {
        self.brokers[0].addr()
    }

    pub fn broker(&self, i: usize) -> &Broker {
        &self.brokers[i]
    }

    pub fn brokers(&self) -> &[Broker] {
        &self.brokers
    }

    pub fn broker_node(&self, i: usize) -> &NodeHandle {
        &self.broker_nodes[i]
    }

    /// Adds a client machine to the fabric.
    pub fn add_client_node(&self, name: &str) -> NodeHandle {
        self.fabric.add_node(name)
    }

    /// Creates a topic through the controller and waits until its leaders
    /// are installed.
    pub async fn create_topic(&self, topic: &str, partitions: u32, replication: u32) {
        let admin = Admin::connect(&self.admin_node, self.bootstrap())
            .await
            .expect("admin connect");
        admin
            .create_topic(topic, partitions, replication)
            .await
            .expect("create topic");
    }

    /// The telemetry registry this cluster's components report into.
    pub fn telemetry(&self) -> &kdtelem::Registry {
        &self.telemetry
    }

    /// Aggregated telemetry snapshot across every instrumented component
    /// (NICs, links, brokers, clients built on this thread).
    pub fn telemetry_report(&self) -> kdtelem::TelemetryReport {
        self.telemetry.snapshot()
    }

    /// Fetches the bootstrap broker's telemetry over the admin wire path —
    /// the remote flavour of [`telemetry_report`](Self::telemetry_report).
    pub async fn broker_telemetry(&self) -> kdtelem::TelemetryReport {
        let admin = Admin::connect(&self.admin_node, self.bootstrap())
            .await
            .expect("admin connect");
        admin.telemetry().await.expect("telemetry rpc")
    }

    /// Address of the leader broker for a partition.
    pub async fn leader_of(&self, topic: &str, partition: u32) -> BrokerAddr {
        let admin = Admin::connect(&self.admin_node, self.bootstrap())
            .await
            .expect("admin connect");
        admin.leader_of(topic, partition).await.expect("leader")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_starts_and_creates_topics() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::Kafka, 3);
            cluster.create_topic("t", 4, 2).await;
            // Leaders spread round-robin over the three brokers.
            let l0 = cluster.leader_of("t", 0).await;
            let l1 = cluster.leader_of("t", 1).await;
            let l2 = cluster.leader_of("t", 2).await;
            let l3 = cluster.leader_of("t", 3).await;
            assert_ne!(l0.node, l1.node);
            assert_ne!(l1.node, l2.node);
            assert_eq!(l0.node, l3.node);
        });
    }

    #[test]
    fn duplicate_topic_rejected() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::Kafka, 1);
            cluster.create_topic("t", 1, 1).await;
            let admin = Admin::connect(&cluster.admin_node, cluster.bootstrap())
                .await
                .unwrap();
            let err = admin.create_topic("t", 1, 1).await.err();
            assert_eq!(
                err,
                Some(kdclient::ClientError::Broker(
                    kdwire::ErrorCode::AlreadyExists
                ))
            );
        });
    }
}
