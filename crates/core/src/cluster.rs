//! The cluster harness: a fabric, N broker machines, and client machines,
//! mirroring the paper's 12-node InfiniBand testbed (§5 "Settings").

use std::cell::RefCell;
use std::rc::Rc;

use kdbroker::Broker;
use kdclient::Admin;
use kdstorage::{LogConfig, TopicPartition};
use kdwire::BrokerAddr;
use netsim::profile::Profile;
use netsim::{Fabric, NodeHandle};

use crate::systems::SystemKind;

/// Where a cluster's nodes live in a sharded parallel run (see
/// [`crate::shardsim`]): the partition group it forms and the worker shard
/// that owns every one of its nodes. A cluster never spans shards — the
/// fabric is single-threaded by construction — so placement is
/// per-cluster, and cross-group traffic goes through the shard mailboxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Group index in the sharded topology; namespaces node names so
    /// merged telemetry from many groups stays attributable.
    pub group: usize,
    /// Worker shard that owns this cluster's nodes.
    pub shard: usize,
    /// Total shard count of the run.
    pub shards: usize,
}

impl Placement {
    /// The canonical group→shard assignment: round-robin.
    pub fn of_group(group: usize, shards: usize) -> Placement {
        Placement {
            group,
            shard: group % shards.max(1),
            shards: shards.max(1),
        }
    }
}

/// Harness options.
#[derive(Debug, Clone)]
pub struct ClusterOptions {
    pub profile: Profile,
    pub log: LogConfig,
    /// Overrides the per-system default broker config modifier.
    pub api_workers: Option<usize>,
    /// Overrides the RDMA completion-poller thread count.
    pub rdma_pollers: Option<usize>,
    /// Overrides the CQ drain batch size (`1` reproduces the
    /// one-completion-per-wakeup loop bit for bit).
    pub cq_batch: Option<usize>,
    /// Overrides the produce-connection receive provisioning (per-QP
    /// queues, a shared receive queue, or SRQ + QP multiplexing —
    /// DESIGN.md §13).
    pub conn_mode: Option<kdbroker::ConnMode>,
    /// Overrides the SRQ depth (SRQ modes only).
    pub srq_depth: Option<usize>,
    /// Overrides the multiplexed lending-pool size (`SrqMux` only).
    pub mux_pool: Option<usize>,
    /// Overrides the per-QP receive depth (`PerQp` mode only).
    pub recv_depth: Option<usize>,
    /// Continuous telemetry for every broker (virtual-time sampler + health
    /// watchdog); `None` (default) runs brokers exactly as before.
    pub observe: Option<kdbroker::ObserveConfig>,
    /// Storage backend for every broker's partition logs; `None` (default)
    /// keeps the historical in-memory store. `Some(tiered)` spills sealed
    /// segments to real files under the config's directory, one
    /// `node<N>/<topic>-<partition>` subtree per broker partition.
    pub storage: Option<kdstorage::StorageConfig>,
    /// Node→shard placement for sharded parallel runs; `None` (default) is
    /// a legacy single-runtime cluster. When set, node names carry a
    /// `g<group>.` prefix.
    pub placement: Option<Placement>,
}

impl Default for ClusterOptions {
    fn default() -> Self {
        ClusterOptions {
            profile: Profile::testbed(),
            // Experiments default to modest segments so sweeps stay within
            // memory; the paper's 1 GiB is configurable.
            log: LogConfig {
                segment_size: 32 * 1024 * 1024,
                max_batch_size: 1024 * 1024 + 4096,
            },
            api_workers: None,
            rdma_pollers: None,
            cq_batch: None,
            conn_mode: None,
            srq_depth: None,
            mux_pool: None,
            recv_depth: None,
            observe: None,
            storage: None,
            placement: None,
        }
    }
}

/// A running simulated cluster. Brokers can be crashed, restarted (with log
/// recovery from their surviving segment buffers), and failed over — the
/// harness plays the role of an external cluster controller.
pub struct SimCluster {
    pub fabric: Fabric,
    pub system: SystemKind,
    brokers: RefCell<Vec<Broker>>,
    broker_nodes: Vec<NodeHandle>,
    admin_node: NodeHandle,
    telemetry: kdtelem::Registry,
    config: kdbroker::BrokerConfig,
    peers: Vec<BrokerAddr>,
    placement: Option<Placement>,
}

impl SimCluster {
    /// Starts `n` brokers of the given system with default options.
    pub fn start(system: SystemKind, n: usize) -> SimCluster {
        Self::start_with(system, n, ClusterOptions::default())
    }

    /// Starts `n` brokers with explicit options.
    pub fn start_with(system: SystemKind, n: usize, opts: ClusterOptions) -> SimCluster {
        assert!(n > 0);
        // Everything the cluster builds from here on (links, NICs, brokers,
        // clients created on this thread) reports into the ambient registry.
        let telemetry = kdtelem::current();
        let fabric = Fabric::new(opts.profile.clone());
        let mut broker_nodes = Vec::new();
        let mut peers = Vec::new();
        let mut config = system.broker_config().with_log(opts.log.clone());
        if let Some(w) = opts.api_workers {
            config = config.with_workers(w);
        }
        if let Some(p) = opts.rdma_pollers {
            config = config.with_rdma_pollers(p);
        }
        if let Some(b) = opts.cq_batch {
            config = config.with_cq_batch(b);
        }
        if let Some(m) = opts.conn_mode {
            config = config.with_conn_mode(m);
        }
        if let Some(d) = opts.srq_depth {
            config = config.with_srq_depth(d);
        }
        if let Some(p) = opts.mux_pool {
            config = config.with_mux_pool(p);
        }
        if let Some(d) = opts.recv_depth {
            config = config.with_recv_depth(d);
        }
        if let Some(o) = opts.observe.clone() {
            config = config.with_observe(o);
        }
        if let Some(st) = opts.storage.clone() {
            config = config.with_storage(st);
        }
        let prefix = match opts.placement {
            Some(p) => format!("g{}.", p.group),
            None => String::new(),
        };
        for i in 0..n {
            let node = fabric.add_node(&format!("{prefix}broker{i}"));
            peers.push(BrokerAddr {
                node: node.id.0,
                port: config.tcp_port,
                rdma_port: config.rdma_port,
            });
            broker_nodes.push(node);
        }
        let brokers = broker_nodes
            .iter()
            .map(|node| Broker::start(node, config.clone(), peers.clone()))
            .collect();
        let admin_node = fabric.add_node(&format!("{prefix}admin"));
        SimCluster {
            fabric,
            system,
            brokers: RefCell::new(brokers),
            broker_nodes,
            admin_node,
            telemetry,
            config,
            peers,
            placement: opts.placement,
        }
    }

    /// This cluster's shard placement, if it runs inside a sharded parallel
    /// simulation.
    pub fn placement(&self) -> Option<Placement> {
        self.placement
    }

    /// Address of the bootstrap (controller) broker.
    pub fn bootstrap(&self) -> BrokerAddr {
        self.broker(0).addr()
    }

    /// Handle to broker `i` (a cheap clone; restarts swap the slot, so
    /// re-fetch after `restart_broker`).
    pub fn broker(&self, i: usize) -> Broker {
        self.brokers.borrow()[i].clone()
    }

    pub fn brokers(&self) -> Vec<Broker> {
        self.brokers.borrow().clone()
    }

    pub fn broker_count(&self) -> usize {
        self.brokers.borrow().len()
    }

    pub fn broker_node(&self, i: usize) -> &NodeHandle {
        &self.broker_nodes[i]
    }

    /// Adds a client machine to the fabric (named under the cluster's
    /// group prefix when the cluster is placed on a shard).
    pub fn add_client_node(&self, name: &str) -> NodeHandle {
        match self.placement {
            Some(p) => self.fabric.add_node(&format!("g{}.{name}", p.group)),
            None => self.fabric.add_node(name),
        }
    }

    /// Creates a topic through the controller and waits until its leaders
    /// are installed.
    pub async fn create_topic(&self, topic: &str, partitions: u32, replication: u32) {
        let admin = Admin::connect(&self.admin_node, self.bootstrap())
            .await
            .expect("admin connect");
        admin
            .create_topic(topic, partitions, replication)
            .await
            .expect("create topic");
    }

    /// The telemetry registry this cluster's components report into.
    pub fn telemetry(&self) -> &kdtelem::Registry {
        &self.telemetry
    }

    /// Aggregated telemetry snapshot across every instrumented component
    /// (NICs, links, brokers, clients built on this thread).
    pub fn telemetry_report(&self) -> kdtelem::TelemetryReport {
        self.telemetry.snapshot()
    }

    /// Fetches the bootstrap broker's telemetry over the admin wire path —
    /// the remote flavour of [`telemetry_report`](Self::telemetry_report).
    pub async fn broker_telemetry(&self) -> kdtelem::TelemetryReport {
        let admin = Admin::connect(&self.admin_node, self.bootstrap())
            .await
            .expect("admin connect");
        admin.telemetry().await.expect("telemetry rpc")
    }

    /// Fetches broker `i`'s virtual-time time-series recording over the
    /// admin wire path. Panics unless the cluster was started with
    /// [`ClusterOptions::observe`] set.
    pub async fn broker_series(&self, i: usize) -> kdtelem::SeriesDump {
        let admin = Admin::connect(&self.admin_node, self.broker(i).addr())
            .await
            .expect("admin connect");
        admin.series().await.expect("series rpc")
    }

    /// Fetches broker `i`'s health-watchdog event log over the admin wire
    /// path. Panics unless the cluster was started with
    /// [`ClusterOptions::observe`] set.
    pub async fn broker_health(&self, i: usize) -> Vec<kdtelem::HealthEvent> {
        let admin = Admin::connect(&self.admin_node, self.broker(i).addr())
            .await
            .expect("admin connect");
        admin.health().await.expect("health rpc")
    }

    /// Crashes broker `i` (see [`Broker::crash`]). Idempotent.
    pub fn crash_broker(&self, i: usize) {
        self.broker(i).crash();
    }

    /// Restarts a crashed broker on the same fabric node, recovering every
    /// partition it hosted from the surviving segment buffers (CRC scan,
    /// torn tails truncated). Cluster metadata — which may have moved on
    /// via [`fail_over`](Self::fail_over) while the broker was down — is
    /// re-learned from the controller, so a demoted ex-leader comes back as
    /// a follower under the new epoch. Returns the fresh broker handle.
    pub fn restart_broker(&self, i: usize) -> Broker {
        let old = self.broker(i);
        assert!(!old.is_alive(), "restart_broker({i}) on a live broker");
        let remnants = old.durable_state();
        let fresh = Broker::start(&self.broker_nodes[i], self.config.clone(), self.peers.clone());
        // Authoritative metadata: the lowest-indexed live broker's view —
        // usually broker 0, the controller, which generated plans never
        // crash. A stale restarting ex-leader must NOT trust its own
        // pre-crash store when any live peer exists: a fail_over while it
        // was down only updated live brokers, and reinstalling the old view
        // would resurrect a second leader under a fenced epoch. Only a
        // full-cluster outage falls back to the broker's own store.
        let src = (0..self.broker_count())
            .filter(|&j| j != i)
            .map(|j| self.broker(j))
            .find(|b| b.is_alive())
            .unwrap_or_else(|| old.clone());
        let me = fresh.addr().node;
        let mut remnant: std::collections::HashMap<_, _> = remnants.into_iter().collect();
        for t in src.inner().store.all_topics() {
            let mut parts = t.partitions.clone();
            parts.sort_by_key(|p| p.partition);
            for pm in parts {
                let tp = TopicPartition::new(t.name.as_str(), pm.partition);
                let hosted =
                    pm.leader.node == me || pm.replicas.iter().any(|r| r.node == me);
                match remnant.remove(&tp) {
                    Some(bufs) if hosted => {
                        if pm.leader.node != me {
                            // Rejoining as a follower: apply the leader-epoch
                            // truncation rule before recovery (below).
                            self.truncate_to_leader_prefix(&tp, pm.leader, &bufs);
                        }
                        fresh.install_recovered(
                            t.name.as_str(),
                            pm.partition,
                            pm.epoch,
                            pm.leader,
                            pm.replicas.clone(),
                            bufs,
                        );
                    }
                    _ => {
                        // Metadata-only (or a partition created while this
                        // broker was down): install fresh.
                        kdbroker::api::apply_add_partition(
                            fresh.inner(),
                            t.name.as_str(),
                            pm.partition,
                            pm.epoch,
                            pm.leader,
                            pm.replicas.clone(),
                        );
                    }
                }
            }
        }
        self.brokers.borrow_mut()[i] = fresh.clone();
        fresh
    }

    /// The stand-in for Kafka's `OffsetsForLeaderEpoch` truncation: a
    /// restarting follower's recovered log may have diverged from the
    /// current leader (the crashed ex-leader committed bytes that were
    /// never replicated before a failover). Zero the follower's buffers
    /// from the first byte that differs from the live leader's committed
    /// prefix — the recovery CRC scan then truncates at the last intact
    /// batch boundary before the divergence. If no live leader is found the
    /// log is recovered as-is; the push module detects the misaligned
    /// frontier at session establish and refuses to replicate onto it.
    fn truncate_to_leader_prefix(
        &self,
        tp: &TopicPartition,
        leader: BrokerAddr,
        bufs: &[(u64, Rc<RefCell<Vec<u8>>>)],
    ) {
        let Some(lb) = self
            .brokers
            .borrow()
            .iter()
            .find(|b| b.addr().node == leader.node && b.is_alive())
            .cloned()
        else {
            return;
        };
        let Some(lp) = lb.inner().store.get(tp) else {
            return;
        };
        for (base, buf) in bufs.iter() {
            // Match leader segments by base offset, not index: a tiered
            // leader may have reclaimed its oldest files, shifting indices.
            let matched = (0..lp.log.segment_count())
                .filter_map(|k| lp.log.segment(k).map(|s| (k, s)))
                .find(|(_, s)| !s.is_reclaimed() && s.base_offset() == *base);
            match matched {
                Some((k, ls)) => {
                    // Evicted leader segments compare against file bytes.
                    let lbytes = if ls.is_resident() {
                        ls.shared_buf().borrow().clone()
                    } else {
                        lp.log.store().load(k).unwrap_or_default()
                    };
                    let mut fseg = buf.borrow_mut();
                    let lim = (ls.committed_pos() as usize)
                        .min(lbytes.len())
                        .min(fseg.len());
                    let n = lbytes[..lim]
                        .iter()
                        .zip(fseg.iter())
                        .take_while(|(a, b)| a == b)
                        .count();
                    for byte in fseg.iter_mut().skip(n) {
                        *byte = 0;
                    }
                }
                None => buf.borrow_mut().iter_mut().for_each(|b| *b = 0),
            }
        }
    }

    /// Epoch-fenced leader change: promotes the first live follower of the
    /// partition, bumps the epoch, and installs the new view on every live
    /// broker (controller first). The demoted leader keeps a replica role;
    /// its active produce grant is revoked with `FencedEpoch`, rotating the
    /// rkey so any producer or push session still operating under the old
    /// epoch faults at the NIC. Returns the new leader, or `None` when no
    /// live follower exists to promote.
    pub fn fail_over(&self, topic: &str, partition: u32) -> Option<BrokerAddr> {
        let tp = TopicPartition::new(topic, partition);
        let meta = self.broker(0).inner().store.partition_meta(&tp)?;
        let live = |n: u32| {
            self.brokers
                .borrow()
                .iter()
                .any(|b| b.addr().node == n && b.is_alive())
        };
        let mut candidates: Vec<BrokerAddr> = meta
            .replicas
            .iter()
            .filter(|r| r.node != meta.leader.node && live(r.node))
            .copied()
            .collect();
        if candidates.is_empty() {
            return None;
        }
        let new_leader = candidates.remove(0);
        let mut replicas = vec![meta.leader];
        replicas.extend(candidates);
        let epoch = meta.epoch + 1;
        for b in self.brokers() {
            if b.is_alive() {
                kdbroker::api::apply_add_partition(
                    b.inner(),
                    topic,
                    partition,
                    epoch,
                    new_leader,
                    replicas.clone(),
                );
            }
        }
        Some(new_leader)
    }

    /// Address of the leader broker for a partition.
    pub async fn leader_of(&self, topic: &str, partition: u32) -> BrokerAddr {
        let admin = Admin::connect(&self.admin_node, self.bootstrap())
            .await
            .expect("admin connect");
        admin.leader_of(topic, partition).await.expect("leader")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_starts_and_creates_topics() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::Kafka, 3);
            cluster.create_topic("t", 4, 2).await;
            // Leaders spread round-robin over the three brokers.
            let l0 = cluster.leader_of("t", 0).await;
            let l1 = cluster.leader_of("t", 1).await;
            let l2 = cluster.leader_of("t", 2).await;
            let l3 = cluster.leader_of("t", 3).await;
            assert_ne!(l0.node, l1.node);
            assert_ne!(l1.node, l2.node);
            assert_eq!(l0.node, l3.node);
        });
    }

    #[test]
    fn duplicate_topic_rejected() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let cluster = SimCluster::start(SystemKind::Kafka, 1);
            cluster.create_topic("t", 1, 1).await;
            let admin = Admin::connect(&cluster.admin_node, cluster.bootstrap())
                .await
                .unwrap();
            let err = admin.create_topic("t", 1, 1).await.err();
            assert_eq!(
                err,
                Some(kdclient::ClientError::Broker(
                    kdwire::ErrorCode::AlreadyExists
                ))
            );
        });
    }
}
