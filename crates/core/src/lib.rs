//! # kafkadirect
//!
//! A full-system reproduction of **"KafkaDirect: Zero-copy Data Access for
//! Apache Kafka over RDMA Networks"** (SIGMOD 2022) in simulation.
//!
//! This facade crate wires the substrate crates together and provides the
//! [`SimCluster`] harness used by the examples, the integration tests, and
//! every benchmark that regenerates a figure of the paper.
//!
//! ```
//! use kafkadirect::{SimCluster, SystemKind};
//! use kdstorage::Record;
//!
//! let rt = sim::Runtime::new();
//! rt.block_on(async {
//!     let cluster = SimCluster::start(SystemKind::KafkaDirect, 1);
//!     cluster.create_topic("events", 1, 1).await;
//!     let client = cluster.add_client_node("client");
//!
//!     let mut producer = kdclient::RdmaProducer::connect(
//!         &client, cluster.bootstrap(), "events", 0, false).await.unwrap();
//!     let offset = producer.send(&Record::value(b"hello".to_vec())).await.unwrap();
//!     assert_eq!(offset, 0);
//!
//!     let mut consumer = kdclient::RdmaConsumer::connect(
//!         &client, cluster.bootstrap(), "events", 0, 0).await.unwrap();
//!     let records = consumer.next_records().await.unwrap();
//!     assert_eq!(records[0].record.value, b"hello");
//! });
//! ```

pub mod chaos;
pub mod cluster;
pub mod events;
pub mod shardsim;
pub mod systems;

pub use cluster::{ClusterOptions, Placement, SimCluster};
pub use shardsim::{run_sharded_groups, GroupCtx, GroupOutcome, ShardedRun};
pub use systems::SystemKind;

// Re-export the component crates under one roof.
pub use kdbroker::{Broker, BrokerConfig, ConnMode, ObserveConfig, RdmaToggles, Transport};
pub use kdclient::{
    Admin, ClientTransport, MultiRdmaConsumer, RdmaConsumer, RdmaProducer, TcpConsumer,
    TcpProducer,
};
pub use kdstorage::{Record, RecordView};
pub use netsim::profile::Profile;
pub use netsim::{Fabric, NodeHandle};
