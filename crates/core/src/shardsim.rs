//! Sharded parallel simulation of many partition groups.
//!
//! One [`SimCluster`](crate::SimCluster) is a single-threaded world: its
//! fabric, brokers, and clients all share `Rc` state on one runtime. To
//! scale past what one core can simulate, a sharded run partitions the
//! topology into **groups** — each a complete cluster plus its client
//! machines — and places group `g` on worker shard `g % shards`
//! ([`Placement::of_group`]). Shards advance their virtual clocks
//! independently inside conservative lookahead windows (see [`sim::shard`]);
//! anything crossing group boundaries rides the shard mailboxes via
//! [`netsim::xshard`], stamped with a virtual delivery time no earlier than
//! the fabric's propagation delay.
//!
//! # Determinism contract
//!
//! The simulated history of each group is a function of `(seed, group)`
//! only — not of the shard count. Raw trace ids and ambient RNG draws *do*
//! differ across shard layouts (both come from per-thread/per-runtime
//! allocators shared with co-resident groups), which is why equivalence is
//! judged on [`kdtelem::canonical_trace_digest`] — lifelines renumbered by
//! first appearance — and on acked/consumed record sets, neither of which
//! embeds a raw id. `tests/shard_equivalence.rs` enforces this across shard
//! counts for every CI seed.
//!
//! Each group gets its own [`kdtelem::Registry`] and [`kdfault::Injector`].
//! Instrumented components capture these at construction time, so the
//! harness makes them ambient around every poll of the group's workload
//! (a scoped-future wrapper — a guard held across `.await` would leak into
//! co-resident groups' polls).

use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use netsim::xshard::{XPacket, XShardNet};
use sim::shard::{run_sharded, ShardOptions, ShardStats};

pub use crate::cluster::Placement;
use crate::cluster::ClusterOptions;

/// A boxed `!Send` future, the workload type group bodies return.
pub type LocalFuture<T> = Pin<Box<dyn Future<Output = T> + 'static>>;

/// Everything a group workload needs to build and drive its world.
pub struct GroupCtx {
    /// Group index in `0..groups`.
    pub group: usize,
    /// Shard that owns this group (`group % shards`).
    pub shard: usize,
    /// Total shard count.
    pub shards: usize,
    /// Cluster options with [`ClusterOptions::placement`] filled in; pass
    /// to [`SimCluster::start_with`](crate::SimCluster::start_with).
    pub opts: ClusterOptions,
    /// This group's telemetry registry — ambient during every poll of the
    /// workload, so components the workload constructs report here.
    pub registry: kdtelem::Registry,
    /// This group's fault injector, ambient like the registry.
    pub injector: kdfault::Injector,
    /// Cross-group mailbox router for this shard. Group `g` conventionally
    /// binds endpoint `g`; sending to group `h` targets shard
    /// `h % shards`, endpoint `h`.
    pub net: Rc<XShardNet>,
}

impl GroupCtx {
    /// Shard owning group `g` under this run's placement.
    pub fn shard_of(&self, group: usize) -> usize {
        group % self.shards
    }
}

/// One group's completed run.
pub struct GroupOutcome<T> {
    pub group: usize,
    pub shard: usize,
    pub result: T,
    /// The group's full drained trace-event stream, in emission order.
    /// Digest with [`kdtelem::canonical_trace_digest`] for cross-layout
    /// comparison.
    pub events: Vec<kdtelem::TraceEvent>,
    /// Faults the group's injector delivered.
    pub injected: u64,
}

/// A completed sharded run: per-group outcomes (sorted by group index) and
/// per-shard scheduler statistics (barrier waits, windows, mailbox counts).
pub struct ShardedRun<T> {
    pub groups: Vec<GroupOutcome<T>>,
    pub stats: Vec<ShardStats>,
}

/// Makes `registry`/`injector` ambient around every poll of `fut`.
struct Scoped<F> {
    registry: kdtelem::Registry,
    injector: kdfault::Injector,
    fut: F,
}

impl<F: Future> Future for Scoped<F> {
    type Output = F::Output;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<F::Output> {
        // Safety: structural projection to `fut`; we never move out of it.
        let this = unsafe { self.get_unchecked_mut() };
        let _t = kdtelem::enter(&this.registry);
        let _i = kdfault::enter(&this.injector);
        unsafe { Pin::new_unchecked(&mut this.fut) }.poll(cx)
    }
}

/// Runs `fut` with the group's registry and injector ambient at every poll.
/// Group workloads that spawn their own tasks (`sim::spawn`) must wrap each
/// spawned future with this, or the task's constructions fall through to
/// the shard's default registry.
pub fn scoped<F: Future>(
    registry: &kdtelem::Registry,
    injector: &kdfault::Injector,
    fut: F,
) -> impl Future<Output = F::Output> {
    Scoped {
        registry: registry.clone(),
        injector: injector.clone(),
        fut,
    }
}

/// Simulates `groups` partition groups across `shards` worker threads.
///
/// `body` is called once per group (on that group's shard thread) and
/// returns the group's workload future; the harness polls every co-resident
/// group's workload concurrently on the shard runtime, with that group's
/// registry and injector ambient. The caller's `opts` are cloned per group
/// with [`ClusterOptions::placement`] filled in — the body is expected to
/// start its cluster with `SimCluster::start_with(system, n, ctx.opts)`.
///
/// `shards = 1` degenerates to the classic single-runtime simulation (all
/// groups interleaved on one virtual clock) and is the reference
/// configuration the equivalence tests compare against.
pub fn run_sharded_groups<T, F>(
    shards: usize,
    groups: usize,
    seed: u64,
    opts: &ClusterOptions,
    body: F,
) -> ShardedRun<T>
where
    T: Send + 'static,
    F: Fn(&GroupCtx) -> LocalFuture<T> + Sync,
{
    assert!(shards >= 1 && groups >= 1);
    let lookahead = opts.profile.lookahead();
    let sopts = ShardOptions::new(shards, lookahead, seed);
    let run = run_sharded::<XPacket, Vec<GroupOutcome<T>>, _>(&sopts, |ctx| {
        let shard = ctx.shard();
        let router = XShardNet::install(ctx, &opts.profile.net);
        // Build each group's ambient state and workload future up front, in
        // group order, so the construction sequence on a shard is a pure
        // function of which groups it owns. The futures are lazy — the
        // world itself is built on first poll, inside the scoped wrapper.
        let worlds: Vec<(usize, kdtelem::Registry, kdfault::Injector, LocalFuture<T>)> = (0
            ..groups)
            .filter(|g| g % shards == shard)
            .map(|g| {
                let registry = kdtelem::Registry::new();
                let _t = kdtelem::enter(&registry);
                let injector = kdfault::Injector::new();
                let gctx = GroupCtx {
                    group: g,
                    shard,
                    shards,
                    opts: ClusterOptions {
                        placement: Some(Placement::of_group(g, shards)),
                        ..opts.clone()
                    },
                    registry: registry.clone(),
                    injector: injector.clone(),
                    net: Rc::clone(&router),
                };
                let fut = body(&gctx);
                (g, registry, injector, fut)
            })
            .collect();
        ctx.run(async move {
            let mut handles = Vec::new();
            for (g, registry, injector, fut) in worlds {
                let handle = sim::spawn(scoped(&registry, &injector, fut));
                handles.push((g, registry, injector, handle));
            }
            let mut out = Vec::new();
            for (g, registry, injector, handle) in handles {
                let result = handle.await.expect("group workload panicked");
                out.push(GroupOutcome {
                    group: g,
                    shard,
                    result,
                    events: registry.drain_trace_events(),
                    injected: injector.injected_total(),
                });
            }
            out
        })
    });
    let mut all: Vec<GroupOutcome<T>> = run.results.into_iter().flatten().collect();
    all.sort_by_key(|o| o.group);
    ShardedRun {
        groups: all,
        stats: run.stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemKind;
    use kdstorage::Record;
    use std::time::Duration;

    fn produce_group(ctx: &GroupCtx, records: u64) -> LocalFuture<Vec<u64>> {
        let opts = ctx.opts.clone();
        let group = ctx.group;
        Box::pin(async move {
            let cluster = crate::SimCluster::start_with(SystemKind::KafkaDirect, 1, opts);
            cluster.create_topic("t", 1, 1).await;
            let node = cluster.add_client_node("prod");
            let mut p =
                kdclient::RdmaProducer::connect(&node, cluster.bootstrap(), "t", 0, false)
                    .await
                    .unwrap();
            let mut offs = Vec::new();
            for i in 0..records {
                let rec = Record::value(format!("g{group}r{i}").into_bytes());
                offs.push(p.send(&rec).await.unwrap());
            }
            offs
        })
    }

    #[test]
    fn groups_run_identically_on_any_shard_count() {
        let digests: Vec<Vec<(Vec<u64>, u64)>> = [1usize, 2, 3]
            .iter()
            .map(|&shards| {
                let run = run_sharded_groups(
                    shards,
                    3,
                    7,
                    &ClusterOptions::default(),
                    |ctx: &GroupCtx| produce_group(ctx, 8),
                );
                assert_eq!(run.stats.len(), shards);
                run.groups
                    .iter()
                    .map(|g| {
                        (
                            g.result.clone(),
                            kdtelem::canonical_trace_digest(&g.events),
                        )
                    })
                    .collect()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[0], digests[2]);
        assert!(!digests[0].is_empty());
    }

    #[test]
    fn cross_group_beacons_cross_shards() {
        // Every group >0 pings group 0 through the mailbox router; group 0
        // counts arrivals. Exercises self-ring (group 2 shares shard 0) and
        // cross-thread rings in one topology.
        let run = run_sharded_groups(
            2,
            3,
            11,
            &ClusterOptions::default(),
            |ctx: &GroupCtx| {
                let group = ctx.group;
                let net = Rc::clone(&ctx.net);
                let home = ctx.shard_of(0);
                let count = Rc::new(std::cell::Cell::new(0u64));
                if group == 0 {
                    let c = Rc::clone(&count);
                    net.bind(0, move |_| c.set(c.get() + 1));
                }
                Box::pin(async move {
                    if group == 0 {
                        while count.get() < 2 {
                            sim::time::sleep(Duration::from_micros(10)).await;
                        }
                    } else {
                        net.send(home, 0, group as u64, vec![group as u8]);
                    }
                    count.get()
                })
            },
        );
        assert_eq!(run.groups[0].result, 2);
    }
}
