//! The three systems the paper compares (§5 "Implementation"), plus
//! per-datapath KafkaDirect variants for the module-isolation experiments.

use kdbroker::{BrokerConfig, RdmaToggles};
use kdclient::ClientTransport;

/// Which system a cluster runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemKind {
    /// Unmodified Apache Kafka over IPoIB: TCP everywhere.
    Kafka,
    /// OSU RDMA-Kafka: two-sided RDMA Send/Recv messaging, intermediate
    /// buffer copies, no one-sided datapaths.
    OsuKafka,
    /// KafkaDirect with every RDMA module enabled.
    KafkaDirect,
    /// KafkaDirect with a chosen subset of RDMA datapaths ("KafkaDirect
    /// supports enabling only particular RDMA modules", §5.3).
    KafkaDirectWith(RdmaToggles),
}

impl SystemKind {
    /// The broker configuration of this system.
    pub fn broker_config(self) -> BrokerConfig {
        match self {
            SystemKind::Kafka => BrokerConfig::kafka(),
            SystemKind::OsuKafka => BrokerConfig::osu(),
            SystemKind::KafkaDirect => BrokerConfig::kafkadirect(RdmaToggles::all()),
            SystemKind::KafkaDirectWith(t) => BrokerConfig::kafkadirect(t),
        }
    }

    /// The request/response transport clients of this system use.
    pub fn client_transport(self) -> ClientTransport {
        match self {
            SystemKind::OsuKafka => ClientTransport::Osu,
            _ => ClientTransport::Tcp,
        }
    }

    /// Whether producers use the one-sided RDMA produce datapath.
    pub fn rdma_produce(self) -> bool {
        self.broker_config().rdma.produce
    }

    /// Whether consumers use the one-sided RDMA consume datapath.
    pub fn rdma_consume(self) -> bool {
        self.broker_config().rdma.consume
    }

    pub fn label(self) -> &'static str {
        match self {
            SystemKind::Kafka => "Kafka",
            SystemKind::OsuKafka => "OSU Kafka",
            SystemKind::KafkaDirect => "KafkaDirect",
            SystemKind::KafkaDirectWith(t) => match (t.produce, t.replicate, t.consume) {
                (true, false, false) => "RDMA Prod.",
                (false, true, false) => "RDMA Repl.",
                (false, false, true) => "RDMA Cons.",
                (true, true, false) => "RDMA Prod.+Repl.",
                (true, false, true) => "RDMA Prod.+Cons.",
                _ => "KafkaDirect (partial)",
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kdbroker::Transport;

    #[test]
    fn configs_match_paper_systems() {
        assert_eq!(SystemKind::Kafka.broker_config().transport, Transport::Tcp);
        assert!(!SystemKind::Kafka.broker_config().rdma.any());
        assert_eq!(
            SystemKind::OsuKafka.broker_config().transport,
            Transport::RdmaSendRecv
        );
        assert!(!SystemKind::OsuKafka.broker_config().rdma.any());
        assert!(SystemKind::KafkaDirect.broker_config().rdma.produce);
        assert_eq!(
            SystemKind::OsuKafka.client_transport(),
            ClientTransport::Osu
        );
        let prod_only = SystemKind::KafkaDirectWith(RdmaToggles {
            produce: true,
            ..RdmaToggles::none()
        });
        assert_eq!(prod_only.label(), "RDMA Prod.");
    }
}
