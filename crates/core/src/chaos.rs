//! The chaos driver: applies a deterministic [`kdfault::FaultPlan`] to a
//! running [`SimCluster`] at the scheduled virtual times.
//!
//! The driver is pure mechanism-dispatch — every fault kind maps onto the
//! injection hook of the layer that owns it (broker lifecycle, fabric
//! links, RNIC state). Each fault that actually fires is accounted through
//! the ambient [`kdfault::Injector`], so injected-fault totals land in the
//! same [`kdtelem::TelemetryReport`] as the metrics they perturb.

use std::time::Duration;

use kdfault::{FaultKind, FaultPlan};

use crate::cluster::SimCluster;

/// Plays a fault plan against the cluster, sleeping virtual time between
/// triggers. Run it concurrently with the workload (the workload tasks are
/// spawned, the driver is awaited — or vice versa). Returns the number of
/// faults that actually fired; a fault whose precondition no longer holds
/// (crashing an already-dead broker, failing over a partition with no live
/// follower) is skipped, which keeps randomly generated plans safe to
/// replay verbatim.
pub async fn run_plan(cluster: &SimCluster, plan: &FaultPlan) -> usize {
    let start = sim::now();
    let injector = kdfault::current();
    let mut applied = 0;
    for f in &plan.faults {
        sim::time::sleep_until(start + Duration::from_nanos(f.at_ns)).await;
        if apply_fault(cluster, &f.kind) {
            injector.record(&f.kind);
            applied += 1;
        }
    }
    applied
}

/// Applies one fault now. Returns whether it fired.
pub fn apply_fault(cluster: &SimCluster, kind: &FaultKind) -> bool {
    let node_of = |i: u32| cluster.broker_node(i as usize).id;
    match kind {
        FaultKind::BrokerCrash { broker } => {
            let b = cluster.broker(*broker as usize);
            if !b.is_alive() {
                return false;
            }
            b.crash();
            true
        }
        FaultKind::BrokerRestart { broker } => {
            if cluster.broker(*broker as usize).is_alive() {
                return false;
            }
            cluster.restart_broker(*broker as usize);
            true
        }
        FaultKind::FailOver { topic, partition } => {
            cluster.fail_over(topic, *partition).is_some()
        }
        FaultKind::LinkDown { node } => {
            cluster.fabric.set_node_down(node_of(*node));
            true
        }
        FaultKind::LinkUp { node } => {
            cluster.fabric.set_node_up(node_of(*node));
            true
        }
        FaultKind::NetPartition { a, b } => {
            cluster.fabric.partition_pair(node_of(*a), node_of(*b));
            true
        }
        FaultKind::NetHeal { a, b } => {
            cluster.fabric.heal_pair(node_of(*a), node_of(*b));
            true
        }
        FaultKind::TcpDrop {
            node,
            drop_permille,
            seed,
        } => {
            cluster
                .fabric
                .set_tcp_drop(node_of(*node), f64::from(*drop_permille) / 1000.0, *seed);
            true
        }
        FaultKind::TcpDelay { node, delay_us } => {
            cluster
                .fabric
                .set_tcp_delay(node_of(*node), Duration::from_micros(u64::from(*delay_us)));
            true
        }
        FaultKind::LinkClear { node } => {
            cluster.fabric.clear_link_faults(node_of(*node));
            true
        }
        FaultKind::QpError { broker } => {
            // Fail the lowest-numbered client-facing produce QP (lowest qpn
            // for determinism — the map iterates in hash order).
            let b = cluster.broker(*broker as usize);
            let qp = {
                let qps = b.inner().produce_qps.borrow();
                qps.keys().min().copied().and_then(|qpn| qps.get(&qpn).cloned())
            };
            match qp {
                Some(qp) => {
                    qp.close();
                    true
                }
                None => false,
            }
        }
        FaultKind::CqOverflow { broker } => {
            let b = cluster.broker(*broker as usize);
            if !b.is_alive() {
                return false;
            }
            b.inner().recv_cq.inject_overflow();
            true
        }
        FaultKind::RnrStorm {
            broker,
            duration_us,
        } => {
            let b = cluster.broker(*broker as usize);
            let qp = {
                let qps = b.inner().produce_qps.borrow();
                qps.keys().min().copied().and_then(|qpn| qps.get(&qpn).cloned())
            };
            match qp {
                Some(qp) => {
                    qp.inject_rnr_storm(Duration::from_micros(u64::from(*duration_us)));
                    true
                }
                None => false,
            }
        }
        FaultKind::TornWrite { broker, bytes } => {
            // Only meaningful against the files of a tiered broker — and
            // only once it is down (a live broker would keep writing past
            // the tear). Garbles real file bytes; recovery reads them back.
            let b = cluster.broker(*broker as usize);
            if b.is_alive() {
                return false;
            }
            b.garble_storage_tail(*bytes) > 0
        }
        // Client processes live outside the cluster harness; the chaos test
        // harness resolves client indices itself and applies these before
        // handing the plan to `run_plan`.
        FaultKind::ClientCrash { .. } => false,
    }
}
