//! Property: timers scheduled from mailbox-delivered cross-shard events
//! expire in exact `(effective deadline, insertion order)` order within a
//! shard, for arbitrary interleavings of delivery times, streams, and
//! deadline offsets (including "late" deadlines at or before the delivery
//! instant, which must fire immediately in insertion order).
//!
//! The model is computed without running anything: deliveries sort by
//! `(deliver_at, stream, seq)` (the shard mailbox's canonical order), each
//! delivery schedules its sleeps in payload order, and a sleep's effective
//! deadline is `max(target, deliver_at)` — the executor clamps late timers
//! to "now". The observed wake order on the receiving shard must equal the
//! model's stable sort by `(effective deadline, global insertion index)`.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use sim::shard::{run_sharded, ShardOptions};
use sim::SimTime;

struct Delivery {
    deliver_at: u64,
    stream: u64,
    /// Sleep targets as signed offsets from the delivery time; negative
    /// offsets are "late" timers that must fire at the delivery instant.
    sleepers: Vec<i64>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Generates one random scenario: `n` messages from shard 0 to shard 1,
/// scattered over a few lookahead windows with heavy collisions in both
/// delivery time and deadline.
fn gen_case(seed: u64, n: usize, lookahead_ns: u64) -> Vec<Delivery> {
    let mut s = seed;
    (0..n)
        .map(|_| {
            let deliver_at = lookahead_ns + splitmix(&mut s) % (20 * lookahead_ns);
            // Few distinct streams so same-(deliver_at, stream) seq ties occur.
            let stream = splitmix(&mut s) % 4;
            let sleepers = (0..(splitmix(&mut s) % 4))
                .map(|_| {
                    let magnitude = (splitmix(&mut s) % (3 * lookahead_ns)) as i64;
                    // A third of the targets are late (at/before delivery).
                    if splitmix(&mut s).is_multiple_of(3) {
                        -magnitude
                    } else {
                        magnitude
                    }
                })
                .collect();
            Delivery {
                deliver_at,
                stream,
                sleepers,
            }
        })
        .collect()
}

/// The expected wake sequence: (wake time, insertion index) pairs in the
/// exact order the receiving shard must observe them.
fn model(case: &[Delivery]) -> Vec<(u64, usize)> {
    // Mailbox delivery order: (deliver_at, stream, send seq per stream).
    let mut order: Vec<(u64, u64, u64, usize)> = Vec::new();
    let mut per_stream_seq = std::collections::HashMap::new();
    for (i, d) in case.iter().enumerate() {
        let seq = per_stream_seq.entry(d.stream).or_insert(0u64);
        order.push((d.deliver_at, d.stream, *seq, i));
        *seq += 1;
    }
    order.sort();
    let mut expected = Vec::new();
    for &(deliver_at, _, _, i) in &order {
        for &off in &case[i].sleepers {
            let target = deliver_at as i64 + off;
            let effective = target.max(deliver_at as i64) as u64;
            let idx = expected.len();
            expected.push((effective, idx));
        }
    }
    expected.sort(); // exact expiry key: (deadline, insertion index)
    expected
}

#[test]
fn mailbox_scheduled_timers_expire_in_deadline_seq_order() {
    for seed in [1u64, 7, 42, 1234, 0xDEAD_BEEF] {
        let lookahead_ns = 650;
        let case = Arc::new(gen_case(seed, 60, lookahead_ns));
        let expected = model(&case);
        assert!(!expected.is_empty());

        struct Msg {
            sleepers: Vec<i64>,
            base_idx: usize,
        }

        // Pre-compute each delivery's first global insertion index so the
        // receiving shard can label wakes without coordination.
        let mut order: Vec<(u64, u64, u64, usize)> = Vec::new();
        let mut per_stream_seq = std::collections::HashMap::new();
        for (i, d) in case.iter().enumerate() {
            let seq = per_stream_seq.entry(d.stream).or_insert(0u64);
            order.push((d.deliver_at, d.stream, *seq, i));
            *seq += 1;
        }
        order.sort();
        let mut base = 0usize;
        let mut base_of = vec![0usize; case.len()];
        for &(_, _, _, i) in &order {
            base_of[i] = base;
            base += case[i].sleepers.len();
        }

        let case2 = Arc::new((Arc::clone(&case), base_of));
        let opts = ShardOptions::new(2, Duration::from_nanos(lookahead_ns), seed);
        let case_outer = Arc::clone(&case2);
        let run = run_sharded::<Msg, Vec<(u64, usize)>, _>(&opts, move |ctx| {
            let wakes: Rc<RefCell<Vec<(u64, usize)>>> = Rc::new(RefCell::new(Vec::new()));
            if ctx.shard() == 1 {
                let wakes2 = Rc::clone(&wakes);
                ctx.set_handler(move |msg: Msg| {
                    let deliver_at = sim::now().as_nanos();
                    for (j, &off) in msg.sleepers.iter().enumerate() {
                        let target = deliver_at as i64 + off;
                        let idx = msg.base_idx + j;
                        let wakes3 = Rc::clone(&wakes2);
                        sim::spawn_detached(async move {
                            let at = SimTime::from_nanos(target.max(0) as u64);
                            sim::time::sleep_until(at).await;
                            wakes3.borrow_mut().push((sim::now().as_nanos(), idx));
                        });
                    }
                });
            }
            let shard = ctx.shard();
            let tx = ctx.sender();
            let (case, base_of) = (&case_outer.0, &case_outer.1);
            let case = Arc::clone(case);
            let base_of = base_of.clone();
            let wakes2 = Rc::clone(&wakes);
            ctx.run(async move {
                if shard == 0 {
                    for (i, d) in case.iter().enumerate() {
                        tx.send(
                            1,
                            SimTime::from_nanos(d.deliver_at),
                            d.stream,
                            Msg {
                                sleepers: d.sleepers.clone(),
                                base_idx: base_of[i],
                            },
                        );
                    }
                } else {
                    // Outlive every delivery and every (possibly late) sleep.
                    sim::time::sleep(Duration::from_nanos(60 * lookahead_ns)).await;
                }
                wakes2.borrow_mut().clone()
            })
        });
        let observed = &run.results[1];
        assert_eq!(
            observed, &expected,
            "seed {seed}: wake order diverged from (deadline, insertion-seq) model"
        );
    }
}
