//! A deterministic, single-threaded, discrete-event async runtime.
//!
//! `sim` is the execution substrate for the KafkaDirect reproduction. Every
//! component of the simulated cluster — brokers, clients, NIC engines, links —
//! runs as a cooperative task on one OS thread. Time is *virtual*: it advances
//! only when no task is runnable, jumping straight to the earliest pending
//! timer. This gives microsecond-scale timing fidelity that a real scheduler
//! on a small machine cannot, and makes every experiment reproducible
//! bit-for-bit for a given seed.
//!
//! The API mirrors the familiar tokio surface where practical:
//!
//! ```
//! use std::time::Duration;
//!
//! let rt = sim::Runtime::new();
//! let elapsed = rt.block_on(async {
//!     let start = sim::now();
//!     let task = sim::spawn(async {
//!         sim::time::sleep(Duration::from_micros(3)).await;
//!         42u32
//!     });
//!     assert_eq!(task.await.unwrap(), 42);
//!     sim::now() - start
//! });
//! assert_eq!(elapsed, Duration::from_micros(3));
//! ```
//!
//! # Design notes
//!
//! * Tasks are `!Send` futures stored in a slab; wakers push task ids onto a
//!   shared ready queue. Spurious wakeups are allowed, so wakers carry no
//!   dedup state.
//! * The timer queue is a hierarchical timer wheel keyed by
//!   `(deadline, seq)` — same-deadline timers fire in registration order. A
//!   dropped sleep leaves a stale entry behind; waking a finished task is a
//!   no-op.
//! * If the ready queue and timer wheel are both empty while the `block_on`
//!   future is still pending, the runtime panics: in a closed simulation this
//!   is always a deadlock bug, and failing loudly beats hanging a test.
//! * The hot path is allocation-free at steady state: task memory is
//!   recycled through a size-class arena, per-slot wakers are cached, and
//!   wheel/ready-queue capacity is retained across events.

mod executor;
pub mod future;
pub mod rng;
pub mod shard;
pub mod sync;
pub mod time;
mod wheel;

pub use executor::{JoinError, JoinHandle, Runtime, SpawnError};
pub use time::{now, try_now, SimTime};

use std::future::Future;

/// Spawns a task onto the current runtime.
///
/// # Panics
/// Panics if called outside of [`Runtime::block_on`].
pub fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    executor::spawn(future)
}

/// Spawns a fire-and-forget task without allocating a [`JoinHandle`]
/// completion channel. Prefer this on hot paths where the handle from
/// [`spawn`] would be dropped anyway.
///
/// # Panics
/// Panics if called outside of [`Runtime::block_on`].
pub fn spawn_detached<F>(future: F)
where
    F: Future<Output = ()> + 'static,
{
    executor::spawn_detached(future)
}

/// Returns a best-effort identifier of the currently running task, useful in
/// trace output. `0` is the `block_on` root task.
pub fn current_task_id() -> u64 {
    executor::current_task_id()
}
