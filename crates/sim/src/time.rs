//! Virtual time: instants, sleeps, and timeouts.

use std::fmt;
use std::future::Future;
use std::ops::{Add, AddAssign, Sub};
use std::pin::Pin;
use std::task::{Context, Poll};
use std::time::Duration;

use crate::executor::{try_with_current, with_current};

/// An instant on the simulation's virtual clock, in nanoseconds since the
/// runtime started. Analogous to `std::time::Instant` but deterministic.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);

    pub fn from_nanos(n: u64) -> Self {
        SimTime(n)
    }

    pub fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Duration since an earlier instant; saturates to zero.
    pub fn saturating_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({}ns)", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}us", self.as_micros_f64())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.as_nanos() as u64)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.as_nanos() as u64;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(self.0 - rhs.as_nanos() as u64)
    }
}

/// Current virtual time of the active runtime.
pub fn now() -> SimTime {
    with_current(|inner| SimTime::from_nanos(inner.now_nanos()))
}

/// Current virtual time, or `None` when no runtime is active on this thread.
/// Telemetry uses this so it can be read outside `block_on` without panicking.
pub fn try_now() -> Option<SimTime> {
    try_with_current(|inner| SimTime::from_nanos(inner.now_nanos()))
}

/// Future returned by [`sleep`] / [`sleep_until`].
pub struct Sleep {
    deadline: SimTime,
}

impl Sleep {
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        with_current(|inner| {
            if inner.now_nanos() >= self.deadline.as_nanos() {
                Poll::Ready(())
            } else {
                inner.register_timer(self.deadline.as_nanos(), cx.waker().clone());
                Poll::Pending
            }
        })
    }
}

/// Sleeps for `duration` of virtual time.
pub fn sleep(duration: Duration) -> Sleep {
    Sleep {
        deadline: now() + duration,
    }
}

/// Sleeps until the given virtual instant (returns immediately if past).
pub fn sleep_until(deadline: SimTime) -> Sleep {
    Sleep { deadline }
}

/// Yields once, letting every other currently-runnable task make progress
/// before this one resumes. Does not advance the clock.
pub fn yield_now() -> YieldNow {
    YieldNow { polled: false }
}

pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// A fixed-period virtual-time ticker: each [`Interval::tick`] sleeps until
/// the next multiple of the period past the creation instant. Ticks never
/// skip — if a tick is serviced late the next one still fires `period`
/// after the *scheduled* (not actual) time, keeping sample timestamps on a
/// deterministic grid.
pub struct Interval {
    next: SimTime,
    period: Duration,
}

impl Interval {
    pub fn period(&self) -> Duration {
        self.period
    }

    /// Waits for the next tick and returns its scheduled instant.
    pub async fn tick(&mut self) -> SimTime {
        let at = self.next;
        sleep_until(at).await;
        self.next = at + self.period;
        at
    }
}

/// Creates an [`Interval`] whose first tick fires `period` from now.
/// `period` must be non-zero (a zero period would live-lock the wheel).
pub fn interval(period: Duration) -> Interval {
    assert!(period > Duration::ZERO, "interval period must be non-zero");
    Interval {
        next: now() + period,
        period,
    }
}

/// Error returned by [`timeout`] when the deadline fires first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl fmt::Display for Elapsed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deadline elapsed")
    }
}

impl std::error::Error for Elapsed {}

/// Runs `future` with a virtual-time deadline.
pub async fn timeout<F: Future>(duration: Duration, future: F) -> Result<F::Output, Elapsed> {
    let sleep = sleep(duration);
    let mut sleep = std::pin::pin!(sleep);
    let mut future = std::pin::pin!(future);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = future.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if sleep.as_mut().poll(cx).is_ready() {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn simtime_arithmetic() {
        let t = SimTime::from_nanos(1_000);
        assert_eq!(t + Duration::from_nanos(500), SimTime::from_nanos(1_500));
        assert_eq!(
            SimTime::from_nanos(1_500) - t,
            Duration::from_nanos(500)
        );
        assert_eq!(t.saturating_since(SimTime::from_nanos(2_000)), Duration::ZERO);
        assert_eq!(format!("{}", SimTime::from_nanos(1_500)), "1.500us");
    }

    #[test]
    fn sleep_zero_is_instant() {
        let rt = Runtime::new();
        rt.block_on(async {
            let t0 = now();
            sleep(Duration::ZERO).await;
            assert_eq!(now(), t0);
        });
    }

    #[test]
    fn sleep_until_past_returns_immediately() {
        let rt = Runtime::new();
        rt.block_on(async {
            sleep(Duration::from_micros(10)).await;
            let t = now();
            sleep_until(SimTime::from_nanos(1)).await;
            assert_eq!(now(), t);
        });
    }

    #[test]
    fn timeout_wins_and_loses() {
        let rt = Runtime::new();
        rt.block_on(async {
            let fast = timeout(Duration::from_micros(10), async {
                sleep(Duration::from_micros(1)).await;
                5
            })
            .await;
            assert_eq!(fast, Ok(5));
            let slow = timeout(Duration::from_micros(1), async {
                sleep(Duration::from_micros(10)).await;
                5
            })
            .await;
            assert_eq!(slow, Err(Elapsed));
        });
    }

    #[test]
    fn equal_deadlines_fire_in_registration_order() {
        let rt = Runtime::new();
        rt.block_on(async {
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..8 {
                let log = std::rc::Rc::clone(&log);
                handles.push(crate::spawn(async move {
                    sleep(Duration::from_micros(5)).await;
                    log.borrow_mut().push(i);
                }));
            }
            for h in handles {
                h.await.unwrap();
            }
            // FIFO tie-break: the simulation's cross-task orderings (e.g.
            // RDMA completion handoffs) rely on this.
            assert_eq!(*log.borrow(), (0..8).collect::<Vec<_>>());
        });
    }

    #[test]
    fn interval_ticks_on_a_fixed_grid() {
        let rt = Runtime::new();
        rt.block_on(async {
            sleep(Duration::from_nanos(100)).await;
            let mut iv = interval(Duration::from_micros(2));
            let mut ticks = Vec::new();
            for _ in 0..3 {
                ticks.push(iv.tick().await.as_nanos());
            }
            assert_eq!(ticks, vec![2_100, 4_100, 6_100]);
            // A late servicer stays on the grid rather than drifting.
            sleep(Duration::from_micros(5)).await; // now = 11_100, past two ticks
            assert_eq!(iv.tick().await.as_nanos(), 8_100); // fires immediately
            assert_eq!(iv.tick().await.as_nanos(), 10_100);
            assert_eq!(iv.tick().await.as_nanos(), 12_100);
        });
    }

    #[test]
    fn yield_now_interleaves() {
        let rt = Runtime::new();
        rt.block_on(async {
            let log = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
            let l1 = std::rc::Rc::clone(&log);
            let h = crate::spawn(async move {
                l1.borrow_mut().push("task");
            });
            log.borrow_mut().push("before-yield");
            yield_now().await;
            log.borrow_mut().push("after-yield");
            h.await.unwrap();
            assert_eq!(*log.borrow(), vec!["before-yield", "task", "after-yield"]);
        });
    }
}
