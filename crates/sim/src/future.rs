//! Small future combinators the simulation needs but std does not provide.

use std::future::Future;
use std::task::Poll;

/// Result of [`race`]: which of the two futures finished first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Either<A, B> {
    Left(A),
    Right(B),
}

/// Runs two futures concurrently and resolves with the first to finish; the
/// loser is dropped. `a` is polled first, so a tie at the same virtual
/// instant deterministically goes to `Left`.
///
/// Both futures are pinned on the caller's stack frame (`pin!`), so racing
/// costs zero heap allocations — this sits on the broker's per-request path.
pub async fn race<A, B>(
    a: impl Future<Output = A>,
    b: impl Future<Output = B>,
) -> Either<A, B> {
    let mut a = std::pin::pin!(a);
    let mut b = std::pin::pin!(b);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = a.as_mut().poll(cx) {
            return Poll::Ready(Either::Left(v));
        }
        if let Poll::Ready(v) = b.as_mut().poll(cx) {
            return Poll::Ready(Either::Right(v));
        }
        Poll::Pending
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::time::Duration;

    #[test]
    fn first_ready_wins() {
        let rt = Runtime::new();
        rt.block_on(async {
            let r = race(
                async {
                    crate::time::sleep(Duration::from_micros(5)).await;
                    1u32
                },
                async {
                    crate::time::sleep(Duration::from_micros(2)).await;
                    2u32
                },
            )
            .await;
            assert_eq!(r, Either::Right(2));
            assert_eq!(crate::now().as_nanos(), 2_000);
        });
    }

    #[test]
    fn tie_goes_left() {
        let rt = Runtime::new();
        rt.block_on(async {
            let r = race(async { 1u32 }, async { 2u32 }).await;
            assert_eq!(r, Either::Left(1));
        });
    }

    #[test]
    fn loser_is_cancelled() {
        let rt = Runtime::new();
        rt.block_on(async {
            let n = crate::sync::Notify::new();
            let fut = n.notified();
            let r = race(fut, async { 7u32 }).await;
            assert_eq!(r, Either::Right(7));
            // The dropped `notified` must have deregistered its waiter:
            // a stored notify_one permit must survive for the next waiter.
            n.notify_one();
            n.notified().await;
        });
    }
}
