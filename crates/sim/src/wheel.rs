//! A hierarchical timer wheel for the jump-to-deadline virtual clock.
//!
//! Replaces the `BinaryHeap<(deadline, seq, waker)>` timer queue. Eleven
//! levels of 64 slots (6 bits per level, 66 bits total) cover the full `u64`
//! nanosecond range, so there is no overflow list. Insertion, cascade steps,
//! and firing are all O(1) amortised per entry, and the slot vectors retain
//! their capacity, so a warmed-up wheel performs no allocator traffic.
//!
//! # Determinism
//!
//! The executor's contract is that timers fire in `(deadline, seq)` order —
//! same-deadline entries in registration order. The wheel preserves this with
//! one invariant, maintained by [`Wheel::advance_to`]: *an entry stored at
//! level `L` always differs from the cursor in its level-`L` digit* (digits
//! are 6-bit groups of the deadline). Whenever the cursor moves, the sweep in
//! `advance_to` redistributes, from the highest level down, every slot the
//! cursor just moved "into". Consequence: two entries with the same deadline
//! are always filed in the *same* slot (slot paths depend only on the
//! deadline, and the invariant guarantees the earlier entry has cascaded down
//! at least as far as the later one is inserted), in insertion order — so a
//! slot drain yields them FIFO, exactly like the heap's `(deadline, seq)`
//! order. Without the sweep, an entry registered early (filed high) could be
//! overtaken by a same-deadline entry registered late (filed low); the
//! `stale_high_level_entry_keeps_fifo_with_later_same_deadline` test pins
//! this.
//!
//! The cursor only ever advances to a value `<=` the minimum pending
//! deadline, which keeps every occupied slot's absolute time reconstructible
//! from the cursor's upper digits.

/// Bits per wheel level: 64 slots each.
const BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << BITS;
/// Levels: ceil(64 / 6) = 11 covers any u64 deadline.
const LEVELS: usize = 11;
const SLOT_MASK: u64 = SLOTS as u64 - 1;

/// A hierarchical timer wheel mapping `(deadline, seq)` to payloads `T`
/// (the executor stores wakers; tests store markers).
pub(crate) struct Wheel<T> {
    /// All stored deadlines are `>= cursor`; never exceeds the minimum
    /// pending deadline.
    cursor: u64,
    len: usize,
    /// Per-level occupancy bitmaps (bit = slot has entries).
    occupied: [u64; LEVELS],
    slots: Vec<Vec<(u64, u64, T)>>,
    /// Reusable cascade buffer.
    scratch: Vec<(u64, u64, T)>,
}

impl<T> Wheel<T> {
    pub fn new() -> Self {
        Wheel {
            cursor: 0,
            len: 0,
            occupied: [0; LEVELS],
            slots: (0..LEVELS * SLOTS).map(|_| Vec::new()).collect(),
            scratch: Vec::new(),
        }
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn len(&self) -> usize {
        self.len
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Level of `deadline` relative to the cursor: the highest 6-bit digit
    /// in which they differ (0 when equal).
    fn level_of(&self, deadline: u64) -> usize {
        let x = deadline ^ self.cursor;
        if x == 0 {
            0
        } else {
            (63 - x.leading_zeros()) as usize / BITS as usize
        }
    }

    pub fn insert(&mut self, deadline: u64, seq: u64, value: T) {
        // Late registrations (deadline at/behind the cursor) file at the
        // cursor and fire on the next pop, like the heap's `<= now` firing.
        let deadline = deadline.max(self.cursor);
        let level = self.level_of(deadline);
        let slot = ((deadline >> (BITS * level as u32)) & SLOT_MASK) as usize;
        self.slots[level * SLOTS + slot].push((deadline, seq, value));
        self.occupied[level] |= 1 << slot;
        self.len += 1;
    }

    /// Moves the cursor to `to` and restores the level invariant: every slot
    /// whose digit the cursor now matches is pushed down a level (highest
    /// level first, so entries settle in one sweep).
    fn advance_to(&mut self, to: u64) {
        debug_assert!(to >= self.cursor);
        self.cursor = to;
        for level in (1..LEVELS).rev() {
            let slot = ((to >> (BITS * level as u32)) & SLOT_MASK) as usize;
            if self.occupied[level] & (1 << slot) != 0 {
                self.redistribute(level, slot);
            }
        }
    }

    /// Re-files every entry of one slot against the current cursor. Entries
    /// land at strictly lower levels, preserving their relative order.
    fn redistribute(&mut self, level: usize, slot: usize) {
        let idx = level * SLOTS + slot;
        debug_assert!(self.scratch.is_empty());
        let mut batch = std::mem::take(&mut self.scratch);
        batch.append(&mut self.slots[idx]);
        self.occupied[level] &= !(1 << slot);
        self.len -= batch.len();
        for (deadline, seq, value) in batch.drain(..) {
            debug_assert!(self.level_of(deadline) < level);
            self.insert(deadline, seq, value);
        }
        self.scratch = batch;
    }

    /// The earliest pending deadline. Cascades coarse slots down as a side
    /// effect; the cursor advances but never past the returned deadline.
    ///
    /// Only safe to call when the virtual clock is about to jump to the
    /// result: the cursor may run ahead of the *current* time, so any timer
    /// registered in between would be misfiled (see [`Wheel::pop_due`]).
    pub fn next_deadline(&mut self) -> Option<u64> {
        self.next_deadline_bounded(u64::MAX)
    }

    /// The earliest pending deadline, **without** touching the cursor.
    ///
    /// Used by the sharded executor to compute a shard's next-event time
    /// between lookahead windows: advancing the cursor there would misfile
    /// timers registered later for nearer deadlines (mailbox deliveries land
    /// *after* this query but may precede the wheel's current minimum), so
    /// the destructive [`Wheel::next_deadline`] walk cannot be used.
    ///
    /// Correctness leans on the level invariant (module docs): an entry at
    /// level `L` matches the cursor in every digit above `L` and exceeds it
    /// at digit `L`, so entries at lower levels are strictly nearer than
    /// entries at higher ones — the minimum lives in the lowest occupied
    /// level, in its lowest occupied slot.
    pub fn peek_min_deadline(&self) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let level = (0..LEVELS).find(|&l| self.occupied[l] != 0)?;
        let slot = self.occupied[level].trailing_zeros() as usize;
        if level == 0 {
            // Level-0 slots hold exactly one deadline each.
            return Some((self.cursor & !SLOT_MASK) | slot as u64);
        }
        // A higher-level slot mixes deadlines that share digits >= `level`;
        // scan the vec for the true minimum.
        self.slots[level * SLOTS + slot]
            .iter()
            .map(|&(d, _, _)| d)
            .min()
    }

    /// Like [`Wheel::next_deadline`], but never advances the cursor past
    /// `bound`; returns `None` when the minimum deadline exceeds `bound`.
    pub fn next_deadline_bounded(&mut self, bound: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        loop {
            if self.occupied[0] != 0 {
                // Level-0 entries sit in the cursor's 64ns frame; everything
                // at higher levels is beyond it, so this is the minimum.
                let slot = self.occupied[0].trailing_zeros() as u64;
                let d = (self.cursor & !SLOT_MASK) | slot;
                return (d <= bound).then_some(d);
            }
            // Lowest occupied slot of the lowest occupied level bounds the
            // minimum; jump the cursor to its base time and split it.
            let level = (1..LEVELS)
                .find(|&l| self.occupied[l] != 0)
                .expect("len > 0 but no occupied slot");
            let slot = self.occupied[level].trailing_zeros() as u64;
            let shift = BITS * level as u32;
            let above = if shift + BITS >= 64 {
                0
            } else {
                !((1u64 << (shift + BITS)) - 1)
            };
            let base = (self.cursor & above) | (slot << shift);
            debug_assert!(base > self.cursor);
            if base > bound {
                return None;
            }
            self.advance_to(base);
        }
    }

    /// Pops every entry with `deadline <= now` into `out`, in
    /// `(deadline, seq)` order (same-deadline entries FIFO).
    ///
    /// The cursor never advances past `now`: tasks woken by the caller may
    /// register fresh timers for deadlines barely after `now`, and a cursor
    /// that had cascaded toward some far-future deadline would misfile them.
    pub fn pop_due(&mut self, now: u64, out: &mut Vec<(u64, u64, T)>) {
        while let Some(d) = self.next_deadline_bounded(now) {
            // No pending deadline is below `d`, so the cursor may step onto
            // it; the sweep funnels every deadline-`d` entry into one
            // level-0 slot.
            self.advance_to(d);
            let slot = (d & SLOT_MASK) as usize;
            debug_assert!(self.slots[slot].iter().all(|e| e.0 == d));
            self.len -= self.slots[slot].len();
            self.occupied[0] &= !(1 << slot);
            out.append(&mut self.slots[slot]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(w: &mut Wheel<u64>, now: u64) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        w.pop_due(now, &mut out);
        out.into_iter().map(|(d, s, _)| (d, s)).collect()
    }

    #[test]
    fn same_deadline_fires_in_insertion_order() {
        let mut w = Wheel::new();
        for seq in 0..10u64 {
            w.insert(1_000, seq, seq);
        }
        assert_eq!(w.len(), 10);
        assert_eq!(w.next_deadline(), Some(1_000));
        let fired = drain(&mut w, 1_000);
        assert_eq!(fired, (0..10).map(|s| (1_000, s)).collect::<Vec<_>>());
        assert!(w.is_empty());
    }

    #[test]
    fn scattered_deadlines_pop_in_sorted_order() {
        // A spread of deadlines across many levels, inserted out of order.
        let deadlines = [
            5u64,
            63,
            64,
            65,
            4_095,
            4_096,
            1 << 20,
            (1 << 20) + 1,
            (1 << 35) + 17,
            (1 << 50) + 3,
            u64::MAX / 2,
            u64::MAX - 1,
        ];
        let mut w = Wheel::new();
        for (seq, &d) in deadlines.iter().rev().enumerate() {
            w.insert(d, seq as u64, d);
        }
        let mut sorted = deadlines.to_vec();
        sorted.sort_unstable();
        let mut got = Vec::new();
        while let Some(d) = w.next_deadline() {
            assert_eq!(d, sorted[got.len()], "wheel must report the exact minimum");
            let mut out = Vec::new();
            w.pop_due(d, &mut out);
            for (dd, _, v) in out {
                assert_eq!(dd, v);
                got.push(dd);
            }
        }
        assert_eq!(got, sorted);
    }

    #[test]
    fn far_future_entry_cascades_down_exactly() {
        let mut w = Wheel::new();
        // Top-level entry: 60+ bits away from the cursor.
        let far = (1u64 << 62) + 12_345;
        w.insert(far, 0, 1);
        // A near entry fires first and drags the cursor forward.
        w.insert(10, 1, 2);
        assert_eq!(w.next_deadline(), Some(10));
        assert_eq!(drain(&mut w, 10), vec![(10, 1)]);
        // The far entry must survive every cascade level intact.
        assert_eq!(w.next_deadline(), Some(far));
        assert_eq!(drain(&mut w, far), vec![(far, 0)]);
        assert!(w.is_empty());
    }

    #[test]
    fn stale_high_level_entry_keeps_fifo_with_later_same_deadline() {
        // Regression for the cascade sweep: A registers for deadline D while
        // the cursor is far away (files high); the cursor then advances close
        // to D; B registers for the same D (files low). A must still fire
        // before B.
        let d = (1u64 << 18) + 42;
        let mut w = Wheel::new();
        w.insert(d, 0, 0); // A, filed at a high level
        w.insert(1 << 18, 1, 1); // intermediate timer pulls the cursor near D
        assert_eq!(w.next_deadline(), Some(1 << 18));
        assert_eq!(drain(&mut w, 1 << 18), vec![((1 << 18), 1)]);
        w.insert(d, 2, 2); // B, same deadline, registered later
        assert_eq!(drain(&mut w, d), vec![(d, 0), (d, 2)]);
    }

    #[test]
    fn pop_due_never_drags_the_cursor_past_now() {
        // Regression: with a far-future timer pending, pop_due's final probe
        // must not cascade the cursor toward it — a timer registered just
        // after the pop (deadline barely past `now`) would be misfiled and
        // fire at the wrong virtual time.
        let mut w = Wheel::new();
        w.insert(1_000, 0, 0); // near
        w.insert(10_000, 1, 1); // far (different level-1 slot)
        assert_eq!(drain(&mut w, 1_000), vec![(1_000, 0)]);
        // Woken task re-arms for now + 1µs, well before the far timer.
        w.insert(2_000, 2, 2);
        assert_eq!(w.next_deadline(), Some(2_000));
        assert_eq!(drain(&mut w, 2_000), vec![(2_000, 2)]);
        assert_eq!(drain(&mut w, 10_000), vec![(10_000, 1)]);
    }

    #[test]
    fn late_insert_fires_immediately_on_next_pop() {
        let mut w = Wheel::new();
        w.insert(100, 0, 0);
        assert_eq!(drain(&mut w, 100), vec![(100, 0)]);
        // Deadline behind the cursor clamps to the cursor and still fires.
        w.insert(5, 1, 1);
        assert_eq!(w.next_deadline(), Some(100));
        assert_eq!(drain(&mut w, 100), vec![(100, 1)]);
    }

    /// Property: under arbitrary interleavings of inserts, non-mutating
    /// peeks, bounded cursor walks (the sharded executor's window probes),
    /// and pops, the wheel expires entries in exact `(deadline, seq)` order
    /// and `peek_min_deadline` always equals the true pending minimum.
    ///
    /// Insert deadlines stay at/above a watermark covering every time and
    /// bound handed to the wheel so far — the same guarantee the sharded
    /// executor provides (mailbox deliveries land at `>= bound`, and
    /// `run_window` probes with `bound - 1`), so the cursor never clamps.
    #[test]
    fn prop_interleaved_inserts_preserve_deadline_seq_order() {
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut rng = move || {
            // splitmix64 — self-contained, deterministic.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for _case in 0..40 {
            let mut w: Wheel<u64> = Wheel::new();
            let mut model: Vec<(u64, u64)> = Vec::new(); // (deadline, seq)
            let mut watermark: u64 = 0;
            let mut seq: u64 = 0;
            let mut out = Vec::new();
            for _op in 0..400 {
                match rng() % 4 {
                    0 | 1 => {
                        // A burst of inserts: mixed horizons, frequent ties.
                        for _ in 0..(rng() % 8 + 1) {
                            let horizon = match rng() % 4 {
                                0 => rng() % 64,            // same level-0 frame
                                1 => rng() % 4_096,         // nearby levels
                                2 => rng() % 1_000_000,     // mid wheel
                                _ => rng() % (1 << 40),     // far future
                            };
                            let d = watermark + horizon;
                            w.insert(d, seq, seq);
                            model.push((d, seq));
                            seq += 1;
                        }
                    }
                    2 => {
                        // Window probe below the minimum: must not disturb
                        // expiry order even though the cursor may advance.
                        if let Some(min) = model.iter().map(|&(d, _)| d).min() {
                            if min > watermark {
                                let bound = watermark + rng() % (min - watermark);
                                assert_eq!(w.next_deadline_bounded(bound), None);
                                watermark = watermark.max(bound);
                            }
                        }
                    }
                    _ => {
                        // Pop everything due at a random time.
                        let t = watermark + rng() % 10_000;
                        out.clear();
                        w.pop_due(t, &mut out);
                        let mut expect: Vec<(u64, u64)> = model
                            .iter()
                            .copied()
                            .filter(|&(d, _)| d <= t)
                            .collect();
                        expect.sort(); // (deadline, seq): exact expiry order
                        model.retain(|&(d, _)| d > t);
                        let got: Vec<(u64, u64)> =
                            out.iter().map(|&(d, s, _)| (d, s)).collect();
                        assert_eq!(got, expect, "pop at t={t} diverged from model");
                        watermark = watermark.max(t);
                    }
                }
                assert_eq!(
                    w.peek_min_deadline(),
                    model.iter().map(|&(d, _)| d).min(),
                    "peek_min_deadline diverged from model minimum"
                );
                assert_eq!(w.len(), model.len());
            }
        }
    }

    #[test]
    fn slot_capacity_is_reused_across_rounds() {
        let mut w = Wheel::new();
        let mut out = Vec::new();
        for round in 0..50u64 {
            let base = round * 1000;
            for seq in 0..32u64 {
                w.insert(base + (seq % 4), seq, seq);
            }
            out.clear();
            w.pop_due(base + 3, &mut out);
            assert_eq!(out.len(), 32);
            assert!(w.is_empty());
        }
    }
}
