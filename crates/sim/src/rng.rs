//! Deterministic randomness tied to the runtime seed.
//!
//! Every random decision in the simulation (workload payloads, arrival
//! jitter) draws from the runtime's seeded RNG so that an experiment is fully
//! described by `(code, seed)`.

use rand::distr::uniform::{SampleRange, SampleUniform};
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

use crate::executor::with_current;

/// Runs `f` with mutable access to the runtime RNG.
pub fn with<T>(f: impl FnOnce(&mut SmallRng) -> T) -> T {
    with_current(|inner| f(&mut inner.rng.borrow_mut()))
}

/// Uniform sample from a range.
pub fn range_u64<R>(range: R) -> u64
where
    R: SampleRange<u64>,
{
    with(|r| r.random_range(range))
}

/// Uniform sample from a range of any uniform-sampleable type.
pub fn range<T, R>(range: R) -> T
where
    T: SampleUniform,
    R: SampleRange<T>,
{
    with(|r| r.random_range(range))
}

/// Fills a byte slice with deterministic pseudo-random data.
pub fn fill_bytes(buf: &mut [u8]) {
    with(|r| r.fill(buf));
}

/// Derives an independent RNG stream from the runtime RNG; useful for
/// workloads that must not perturb each other's sequences.
pub fn fork() -> SmallRng {
    with(|r| SmallRng::seed_from_u64(r.random()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let rt = Runtime::with_seed(seed);
            rt.block_on(async { (0..5).map(|_| range_u64(0..1000)).collect::<Vec<_>>() })
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn fork_streams_diverge() {
        let rt = Runtime::new();
        rt.block_on(async {
            use rand::RngExt as _;
            let mut a = fork();
            let mut b = fork();
            let va: Vec<u64> = (0..4).map(|_| a.random()).collect();
            let vb: Vec<u64> = (0..4).map(|_| b.random()).collect();
            assert_ne!(va, vb);
        });
    }

    #[test]
    fn fill_bytes_fills() {
        let rt = Runtime::new();
        rt.block_on(async {
            let mut buf = [0u8; 64];
            fill_bytes(&mut buf);
            assert!(buf.iter().any(|&b| b != 0));
        });
    }
}
