//! Deterministic randomness tied to the runtime seed.
//!
//! Every random decision in the simulation (workload payloads, arrival
//! jitter) draws from the runtime's seeded RNG so that an experiment is fully
//! described by `(code, seed)`.
//!
//! The generator is an in-tree xoshiro256++ (public domain algorithm by
//! Blackman & Vigna), seeded through splitmix64 — no external dependency, so
//! the simulation builds fully offline.

use crate::executor::with_current;

/// A small, fast, deterministic PRNG (xoshiro256++).
///
/// Usable standalone (`SimRng::seed_from_u64`) for seeded-loop generative
/// tests, or ambiently through the runtime via the free functions of this
/// module.
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Creates a generator whose entire stream is determined by `seed`.
    pub fn seed_from_u64(seed: u64) -> SimRng {
        // splitmix64 expansion of the seed into the 256-bit state.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut s = [next(), next(), next(), next()];
        if s == [0; 4] {
            s = [0xDEAD_BEEF, 1, 2, 3]; // all-zero state is a fixed point
        }
        SimRng { s }
    }

    /// Next uniformly distributed `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0]
            .wrapping_add(s[3])
            .rotate_left(23)
            .wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Next uniformly distributed `u32`.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw from `[0, bound)` using Lemire's multiply-shift with a
    /// rejection pass (unbiased). `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        // Classic rejection sampling on the top range.
        let zone = u64::MAX - (u64::MAX % bound) - 1;
        loop {
            let v = self.next_u64();
            if v <= zone {
                return v % bound;
            }
        }
    }

    /// Uniform sample from a range (`a..b` or `a..=b`) of `u64`/`u32`/`usize`
    /// values.
    pub fn random_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleValue,
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rest = chunks.into_remainder();
        if !rest.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rest.copy_from_slice(&w[..rest.len()]);
        }
    }

    /// A uniformly random `u64` (alias kept close to the old `rand` surface).
    pub fn random(&mut self) -> u64 {
        self.next_u64()
    }

    /// A random boolean that is `true` with probability `p`.
    pub fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// Integer types the RNG can sample uniformly.
pub trait SampleValue: Copy {
    fn from_u64(v: u64) -> Self;
    fn to_u64(self) -> u64;
}

macro_rules! impl_sample_value {
    ($($t:ty),*) => {$(
        impl SampleValue for $t {
            fn from_u64(v: u64) -> Self {
                v as $t
            }
            fn to_u64(self) -> u64 {
                self as u64
            }
        }
    )*};
}
impl_sample_value!(u8, u16, u32, u64, usize);

/// Ranges the RNG can sample from (half-open and inclusive).
pub trait SampleRange<T: SampleValue> {
    fn sample(self, rng: &mut SimRng) -> T;
}

impl<T: SampleValue> SampleRange<T> for std::ops::Range<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "empty sample range");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: SampleValue> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample(self, rng: &mut SimRng) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "empty sample range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.below(span + 1))
    }
}

/// Runs `f` with mutable access to the runtime RNG.
pub fn with<T>(f: impl FnOnce(&mut SimRng) -> T) -> T {
    with_current(|inner| f(&mut inner.rng.borrow_mut()))
}

/// Uniform sample from a range.
pub fn range_u64<R>(range: R) -> u64
where
    R: SampleRange<u64>,
{
    with(|r| r.random_range(range))
}

/// Uniform sample from a range of any uniform-sampleable integer type.
pub fn range<T, R>(range: R) -> T
where
    T: SampleValue,
    R: SampleRange<T>,
{
    with(|r| r.random_range(range))
}

/// Fills a byte slice with deterministic pseudo-random data.
pub fn fill_bytes(buf: &mut [u8]) {
    with(|r| r.fill(buf));
}

/// Derives an independent RNG stream from the runtime RNG; useful for
/// workloads that must not perturb each other's sequences.
pub fn fork() -> SimRng {
    with(|r| SimRng::seed_from_u64(r.next_u64()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn deterministic_per_seed() {
        let draw = |seed| {
            let rt = Runtime::with_seed(seed);
            rt.block_on(async { (0..5).map(|_| range_u64(0..1000)).collect::<Vec<_>>() })
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8));
    }

    #[test]
    fn fork_streams_diverge() {
        let rt = Runtime::new();
        rt.block_on(async {
            let mut a = fork();
            let mut b = fork();
            let va: Vec<u64> = (0..4).map(|_| a.random()).collect();
            let vb: Vec<u64> = (0..4).map(|_| b.random()).collect();
            assert_ne!(va, vb);
        });
    }

    #[test]
    fn fill_bytes_fills() {
        let rt = Runtime::new();
        rt.block_on(async {
            let mut buf = [0u8; 64];
            fill_bytes(&mut buf);
            assert!(buf.iter().any(|&b| b != 0));
        });
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = SimRng::seed_from_u64(99);
        for _ in 0..10_000 {
            let v = r.random_range(10u64..20);
            assert!((10..20).contains(&v));
            let w: u32 = r.random_range(0u32..=3);
            assert!(w <= 3);
            let p: usize = r.random_range(1usize..1500);
            assert!((1..1500).contains(&p));
        }
    }

    #[test]
    fn full_u64_inclusive_range_does_not_panic() {
        let mut r = SimRng::seed_from_u64(3);
        let _: u64 = r.random_range(0u64..=u64::MAX);
        let _: u64 = r.random_range(1u64..u64::MAX);
    }

    #[test]
    fn uniformity_rough() {
        // Coarse sanity: 8 buckets over 80k draws are each within 20% of
        // expectation — catches catastrophic bias, not subtle defects.
        let mut r = SimRng::seed_from_u64(1234);
        let mut buckets = [0u64; 8];
        for _ in 0..80_000 {
            buckets[r.below(8) as usize] += 1;
        }
        for b in buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b}");
        }
    }
}
