//! Conservative parallel discrete-event execution: the cluster is
//! partitioned onto `N` worker shards, each owning a full single-threaded
//! [`Runtime`] (its own timer wheel, ready queue, task arena, and RNG
//! stream), advancing in lockstep lookahead windows.
//!
//! # Protocol (null-message-free bounded windows)
//!
//! Every round, each shard reports its next local event time; a barrier
//! min-reduction yields the global minimum `g`, and every shard then
//! executes all of its events with virtual time strictly below
//! `g + lookahead`. Cross-shard messages are stamped with a virtual
//! delivery time at least `lookahead` past the sender's clock, so nothing
//! sent during a window can be due inside it — messages exchanged at the
//! end-of-round barrier are always for a later window, which makes the
//! barrier-then-exchange schedule causally safe (classic YAWNS-style
//! conservative synchronization).
//!
//! # Determinism
//!
//! * Each shard's runtime is seeded independently ([`shard_seed`]); shard 0
//!   receives the caller's seed unchanged, so a 1-shard run is bit-identical
//!   to a legacy [`Runtime::block_on`] of the same program.
//! * Incoming messages are drained at the barrier and sorted by
//!   `(deliver_at, stream, seq)` before their delivery tasks are spawned.
//!   `stream` is a caller-chosen id (e.g. a simulated link) and `seq` a
//!   per-stream counter, so the sort key is independent of shard placement
//!   and wall-clock arrival order — the same workload split across a
//!   different shard count delivers in the same virtual order.
//! * A shard stops executing the moment its root future completes (the
//!   eager stop mirrors `block_on`'s immediate return) but keeps
//!   participating in barriers, reporting "no events", until every shard is
//!   quiescent.

use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::HashMap;
use std::future::Future;
use std::mem::MaybeUninit;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::executor::Runtime;
use crate::time::SimTime;

/// Sentinel next-event time for a shard with nothing left to do.
const IDLE: u64 = u64::MAX;

/// Capacity of each SPSC mailbox ring (messages per window per directed
/// shard pair before the spill path engages). Power of two.
const RING_CAP: usize = 1024;

/// Per-shard RNG stream: shard 0 keeps the caller's seed unchanged (so one
/// shard reproduces the legacy single-runtime execution bit-for-bit);
/// higher shards get a splitmix64-derived stream.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    if shard == 0 {
        return seed;
    }
    let mut z = seed ^ (shard as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A cross-shard event: opaque payload plus the virtual time it becomes
/// visible on the destination shard and its canonical ordering stamp.
struct XMsg<M> {
    deliver_at: u64,
    stream: u64,
    seq: u64,
    msg: M,
}

// ---------------------------------------------------------------------------
// Bounded SPSC mailbox ring.
// ---------------------------------------------------------------------------

/// A bounded single-producer/single-consumer ring. The producer is the
/// source shard's worker thread; the consumer is the destination shard's.
/// The conservative protocol additionally phase-separates the two (pushes
/// happen during window execution, pops only after the end-of-round
/// barrier), but the ring is a correct lock-free SPSC queue regardless.
/// Overflow beyond [`RING_CAP`] in one window takes the mutexed spill path.
struct SpscRing<M> {
    head: AtomicUsize,
    tail: AtomicUsize,
    slots: Box<[UnsafeCell<MaybeUninit<XMsg<M>>>]>,
    spill: Mutex<Vec<XMsg<M>>>,
    spilled: AtomicU64,
}

// SAFETY: slot `i` is written only by the producer before the tail store
// that publishes it, and read only by the consumer after the matching
// acquire load; head/tail ownership never changes sides.
unsafe impl<M: Send> Send for SpscRing<M> {}
unsafe impl<M: Send> Sync for SpscRing<M> {}

impl<M> SpscRing<M> {
    fn new() -> Self {
        SpscRing {
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
            slots: (0..RING_CAP)
                .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            spill: Mutex::new(Vec::new()),
            spilled: AtomicU64::new(0),
        }
    }

    /// Producer side only.
    fn push(&self, msg: XMsg<M>) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail.wrapping_sub(head) >= RING_CAP {
            self.spilled.fetch_add(1, Ordering::Relaxed);
            self.spill.lock().unwrap().push(msg);
            return;
        }
        // SAFETY: the slot at `tail` is vacant (consumer is past it) and no
        // other producer exists.
        unsafe { (*self.slots[tail % RING_CAP].get()).write(msg) };
        self.tail.store(tail.wrapping_add(1), Ordering::Release);
    }

    /// Consumer side only.
    fn pop(&self) -> Option<XMsg<M>> {
        let head = self.head.load(Ordering::Relaxed);
        if self.tail.load(Ordering::Acquire) == head {
            return None;
        }
        // SAFETY: the slot at `head` was published by the release store of
        // the tail; after this read it is vacant.
        let msg = unsafe { (*self.slots[head % RING_CAP].get()).assume_init_read() };
        self.head.store(head.wrapping_add(1), Ordering::Release);
        Some(msg)
    }

    /// Consumer side: everything currently visible, ring first then spill.
    fn drain_into(&self, out: &mut Vec<XMsg<M>>) {
        while let Some(m) = self.pop() {
            out.push(m);
        }
        let mut spill = self.spill.lock().unwrap();
        out.append(&mut spill);
    }
}

impl<M> Drop for SpscRing<M> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

// ---------------------------------------------------------------------------
// Abortable barrier with min-reduction.
// ---------------------------------------------------------------------------

/// Error returned from barrier waits after a peer shard panicked; the
/// observing worker re-panics so no thread parks forever on a dead barrier.
#[derive(Debug)]
struct PeerPanicked;

struct AbortableBarrier {
    n: usize,
    state: Mutex<BarrierState>,
    cvar: Condvar,
}

struct BarrierState {
    count: usize,
    generation: u64,
    aborted: bool,
}

impl AbortableBarrier {
    fn new(n: usize) -> Self {
        AbortableBarrier {
            n,
            state: Mutex::new(BarrierState {
                count: 0,
                generation: 0,
                aborted: false,
            }),
            cvar: Condvar::new(),
        }
    }

    fn wait(&self) -> Result<(), PeerPanicked> {
        let mut s = self.state.lock().unwrap();
        if s.aborted {
            return Err(PeerPanicked);
        }
        let gen = s.generation;
        s.count += 1;
        if s.count == self.n {
            s.count = 0;
            s.generation += 1;
            self.cvar.notify_all();
            return Ok(());
        }
        while s.generation == gen && !s.aborted {
            s = self.cvar.wait(s).unwrap();
        }
        if s.aborted {
            return Err(PeerPanicked);
        }
        Ok(())
    }

    fn abort(&self) {
        let mut s = self.state.lock().unwrap();
        s.aborted = true;
        self.cvar.notify_all();
    }
}

// ---------------------------------------------------------------------------
// Pool state and worker context.
// ---------------------------------------------------------------------------

/// Tuning for a sharded run.
#[derive(Debug, Clone)]
pub struct ShardOptions {
    /// Worker shard count (`>= 1`).
    pub shards: usize,
    /// Conservative lookahead: every cross-shard send must be stamped at
    /// least this far past the sender's clock. Derive it from the minimum
    /// cross-shard link propagation latency of the simulated topology.
    pub lookahead: Duration,
    /// Base RNG seed; see [`shard_seed`].
    pub seed: u64,
}

impl ShardOptions {
    pub fn new(shards: usize, lookahead: Duration, seed: u64) -> Self {
        ShardOptions {
            shards,
            lookahead,
            seed,
        }
    }
}

/// Per-shard execution statistics, for the bench sweep's barrier-wait
/// attribution.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShardStats {
    pub shard: usize,
    /// Synchronization rounds driven to completion.
    pub windows: u64,
    /// Wall-clock time parked at barriers (sync overhead, not simulation).
    pub barrier_wait_ns: u64,
    /// Task polls executed by this shard's runtime.
    pub polls: u64,
    /// Cross-shard messages sent / received by this shard.
    pub sent: u64,
    pub received: u64,
    /// Messages that overflowed a mailbox ring into the spill path.
    pub spilled: u64,
    /// Final virtual time of the shard's clock.
    pub end_ns: u64,
}

struct PoolShared<M> {
    shards: usize,
    lookahead: u64,
    barrier: AbortableBarrier,
    /// Double-buffered min-reduction slots, indexed by round parity: a
    /// shard resets the *other* slot before the round barrier, so the
    /// reset is always ordered before any peer's next fetch_min.
    next_min: [AtomicU64; 2],
    /// `shards * shards` SPSC rings, indexed `src * shards + dst`.
    rings: Vec<SpscRing<M>>,
}

impl<M> PoolShared<M> {
    fn ring(&self, src: usize, dst: usize) -> &SpscRing<M> {
        &self.rings[src * self.shards + dst]
    }
}

/// Cloneable cross-shard sender handle. Deliberately `!Send`: each handle
/// belongs to the worker thread of the shard it was created on (the "SP"
/// side of the SPSC rings).
pub struct XSender<M: Send + 'static> {
    shared: Arc<PoolShared<M>>,
    src: usize,
    /// Per-stream sequence counters; the `(deliver_at, stream, seq)` stamp
    /// must not depend on shard placement, so streams are caller-defined.
    streams: Rc<RefCell<HashMap<u64, u64>>>,
    sent: Rc<Cell<u64>>,
}

impl<M: Send + 'static> Clone for XSender<M> {
    fn clone(&self) -> Self {
        XSender {
            shared: Arc::clone(&self.shared),
            src: self.src,
            streams: Rc::clone(&self.streams),
            sent: Rc::clone(&self.sent),
        }
    }
}

impl<M: Send + 'static> XSender<M> {
    /// Ships `msg` to shard `dst`, visible there at virtual time
    /// `deliver_at`. `stream` orders same-instant deliveries canonically
    /// (use a stable id of the simulated source, e.g. a link or node id).
    ///
    /// # Panics
    /// Panics if `deliver_at` is less than `lookahead` past the calling
    /// shard's clock — such a send would violate the conservative window
    /// protocol and could be observed late.
    pub fn send(&self, dst: usize, deliver_at: SimTime, stream: u64, msg: M) {
        let deliver_at = deliver_at.as_nanos();
        if let Some(now) = crate::time::try_now() {
            assert!(
                deliver_at >= now.as_nanos() + self.shared.lookahead,
                "sim::shard: send violates lookahead (deliver_at={}ns, now={}ns, lookahead={}ns)",
                deliver_at,
                now.as_nanos(),
                self.shared.lookahead,
            );
        }
        let seq = {
            let mut streams = self.streams.borrow_mut();
            let c = streams.entry(stream).or_insert(0);
            let s = *c;
            *c += 1;
            s
        };
        self.sent.set(self.sent.get() + 1);
        self.shared.ring(self.src, dst).push(XMsg {
            deliver_at,
            stream,
            seq,
            msg,
        });
    }
}

type Handler<M> = Box<dyn FnMut(M)>;

/// One worker shard's execution context, handed to the body closure on the
/// shard's own thread. Owns the shard [`Runtime`].
pub struct ShardCtx<M: Send + 'static> {
    shard: usize,
    shared: Arc<PoolShared<M>>,
    rt: Runtime,
    handler: Rc<RefCell<Option<Handler<M>>>>,
    streams: Rc<RefCell<HashMap<u64, u64>>>,
    sent: Rc<Cell<u64>>,
    received: Cell<u64>,
    windows: Cell<u64>,
    barrier_wait: Cell<u64>,
    ran: Cell<bool>,
}

impl<M: Send + 'static> ShardCtx<M> {
    pub fn shard(&self) -> usize {
        self.shard
    }

    pub fn shards(&self) -> usize {
        self.shared.shards
    }

    pub fn lookahead(&self) -> Duration {
        Duration::from_nanos(self.shared.lookahead)
    }

    pub fn runtime(&self) -> &Runtime {
        &self.rt
    }

    /// Registers the delivery handler: called once per incoming message, on
    /// this shard's thread, inside the runtime, at the message's stamped
    /// virtual delivery time.
    pub fn set_handler(&self, h: impl FnMut(M) + 'static) {
        *self.handler.borrow_mut() = Some(Box::new(h));
    }

    /// A sender handle for cross-shard messages (cloneable, thread-local).
    pub fn sender(&self) -> XSender<M> {
        XSender {
            shared: Arc::clone(&self.shared),
            src: self.shard,
            streams: Rc::clone(&self.streams),
            sent: Rc::clone(&self.sent),
        }
    }

    /// Runs `future` as this shard's root task under the windowed
    /// conservative protocol, synchronizing with the other shards. Returns
    /// the root's output once it completes; the shard then idles through
    /// the remaining rounds until every shard is done.
    ///
    /// # Panics
    /// Panics on global quiescence with this shard's root still pending
    /// (the sharded equivalent of `block_on`'s deadlock panic), or when a
    /// peer shard panicked.
    pub fn run<F>(&self, future: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        assert!(!self.ran.replace(true), "ShardCtx::run called twice");
        let _guard = self.rt.enter();
        let root = self.rt.spawn_root(future);
        let inner = Rc::clone(self.rt.inner());
        let mut done = false;
        let mut round: u64 = 0;
        let mut inbox: Vec<XMsg<M>> = Vec::new();
        // Bound of the window to execute this round; round 0 skips straight
        // to the reduction so every shard's initial events are counted.
        let mut bound: Option<u64> = None;

        loop {
            // 1. Execute this round's window.
            if let Some(b) = bound {
                if !done {
                    done = inner.run_window(b, &mut || root.is_done());
                }
            }

            // 2. Barrier: every shard finished its window, so every message
            //    bound for this shard is visible in the rings.
            if self.wait().is_err() {
                panic!("sim::shard: peer shard panicked");
            }

            // 3. Drain incoming mailboxes and schedule deliveries in the
            //    canonical (deliver_at, stream, seq) order.
            debug_assert!(inbox.is_empty());
            for src in 0..self.shared.shards {
                self.shared.ring(src, self.shard).drain_into(&mut inbox);
            }
            let mut local_next = if done {
                IDLE
            } else if inner.has_ready() {
                inner.now_nanos()
            } else {
                inner.peek_next_deadline().unwrap_or(IDLE)
            };
            if !inbox.is_empty() {
                self.received.set(self.received.get() + inbox.len() as u64);
                if done {
                    // Mirrors block_on: the world stops with the root.
                    inbox.clear();
                } else {
                    inbox.sort_by_key(|m| (m.deliver_at, m.stream, m.seq));
                    let now = inner.now_nanos();
                    for m in inbox.drain(..) {
                        debug_assert!(
                            m.deliver_at > now,
                            "delivery stamped at/behind the shard clock"
                        );
                        local_next = local_next.min(m.deliver_at);
                        let handler = Rc::clone(&self.handler);
                        let at = SimTime::from_nanos(m.deliver_at);
                        let msg = m.msg;
                        crate::spawn_detached(async move {
                            crate::time::sleep_until(at).await;
                            let h = &mut *handler.borrow_mut();
                            let h = h
                                .as_mut()
                                .expect("sim::shard: message arrived with no handler set");
                            h(msg);
                        });
                    }
                    // Park the delivery tasks on their timers now so the
                    // wheel (not the ready queue) carries them into the
                    // next window.
                    inner.drain_ready(&mut || false);
                }
            }

            // 4. Min-reduce next-event times; reset the other parity slot
            //    for the round after next before anyone can reach it.
            let slot = (round % 2) as usize;
            self.shared.next_min[slot].fetch_min(local_next, Ordering::AcqRel);
            self.shared.next_min[1 - slot].store(IDLE, Ordering::Release);
            if self.wait().is_err() {
                panic!("sim::shard: peer shard panicked");
            }
            let global_next = self.shared.next_min[slot].load(Ordering::Acquire);
            self.windows.set(self.windows.get() + 1);
            round += 1;

            if global_next == IDLE {
                break;
            }
            bound = Some(global_next.saturating_add(self.shared.lookahead));
        }

        match root.take() {
            Some(out) => out,
            None => panic!(
                "sim: deadlock — shard {} root future pending at global quiescence (t={}ns)",
                self.shard,
                inner.now_nanos()
            ),
        }
    }

    /// Post-run statistics for this shard.
    pub fn stats(&self) -> ShardStats {
        let spilled = (0..self.shared.shards)
            .map(|dst| {
                self.shared
                    .ring(self.shard, dst)
                    .spilled
                    .load(Ordering::Relaxed)
            })
            .sum();
        ShardStats {
            shard: self.shard,
            windows: self.windows.get(),
            barrier_wait_ns: self.barrier_wait.get(),
            polls: self.rt.poll_count(),
            sent: self.sent.get(),
            received: self.received.get(),
            spilled,
            end_ns: self.rt.now().as_nanos(),
        }
    }

    fn wait(&self) -> Result<(), PeerPanicked> {
        let t0 = Instant::now();
        let r = self.shared.barrier.wait();
        self.barrier_wait
            .set(self.barrier_wait.get() + t0.elapsed().as_nanos() as u64);
        r
    }
}

/// Output of [`run_sharded`]: per-shard body results and execution stats,
/// indexed by shard id.
pub struct ShardRun<T> {
    pub results: Vec<T>,
    pub stats: Vec<ShardStats>,
}

/// Runs `body` once per shard on its own OS thread. The body receives the
/// shard's [`ShardCtx`], builds its slice of the simulated world there
/// (simulation state is `!Send` by design), and drives it via
/// [`ShardCtx::run`].
///
/// Message type `M` is the cross-shard payload; pick one per harness (e.g.
/// a serialized packet for netsim routing).
pub fn run_sharded<M, T, F>(opts: &ShardOptions, body: F) -> ShardRun<T>
where
    M: Send + 'static,
    T: Send,
    F: Fn(&ShardCtx<M>) -> T + Sync,
{
    let n = opts.shards;
    assert!(n >= 1, "need at least one shard");
    let lookahead = u64::try_from(opts.lookahead.as_nanos()).expect("lookahead fits u64");
    assert!(lookahead >= 1, "lookahead must be at least 1ns");
    let shared: Arc<PoolShared<M>> = Arc::new(PoolShared {
        shards: n,
        lookahead,
        barrier: AbortableBarrier::new(n),
        next_min: [AtomicU64::new(IDLE), AtomicU64::new(IDLE)],
        rings: (0..n * n).map(|_| SpscRing::new()).collect(),
    });

    /// Aborts the barrier when the worker unwinds, so peers panic instead
    /// of parking forever.
    struct AbortOnPanic<M>(Arc<PoolShared<M>>);
    impl<M> Drop for AbortOnPanic<M> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                self.0.barrier.abort();
            }
        }
    }

    let body = &body;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let seed = shard_seed(opts.seed, i);
                scope.spawn(move || {
                    let _abort = AbortOnPanic(Arc::clone(&shared));
                    let ctx = ShardCtx {
                        shard: i,
                        shared,
                        rt: Runtime::with_seed(seed),
                        handler: Rc::new(RefCell::new(None)),
                        streams: Rc::new(RefCell::new(HashMap::new())),
                        sent: Rc::new(Cell::new(0)),
                        received: Cell::new(0),
                        windows: Cell::new(0),
                        barrier_wait: Cell::new(0),
                        ran: Cell::new(false),
                    };
                    let out = body(&ctx);
                    (out, ctx.stats())
                })
            })
            .collect();
        let mut results = Vec::with_capacity(n);
        let mut stats = Vec::with_capacity(n);
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for h in handles {
            match h.join() {
                Ok((out, st)) => {
                    results.push(out);
                    stats.push(st);
                }
                Err(e) => panic = Some(e),
            }
        }
        if let Some(e) = panic {
            std::panic::resume_unwind(e);
        }
        ShardRun { results, stats }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::sleep;
    use std::sync::atomic::AtomicU64;

    fn opts(shards: usize, seed: u64) -> ShardOptions {
        ShardOptions::new(shards, Duration::from_micros(5), seed)
    }

    #[test]
    fn one_shard_matches_block_on() {
        // The same program, same seed, run legacy and sharded: identical
        // virtual timestamps and RNG draws.
        async fn program() -> Vec<u64> {
            let mut out = Vec::new();
            for _ in 0..16 {
                let d = crate::rng::range_u64(1..500);
                sleep(Duration::from_nanos(d)).await;
                out.push(crate::now().as_nanos());
            }
            out
        }
        let rt = Runtime::with_seed(42);
        let legacy = rt.block_on(program());
        let sharded = run_sharded::<(), _, _>(&opts(1, 42), |ctx| ctx.run(program()));
        assert_eq!(legacy, sharded.results[0]);
    }

    #[test]
    fn clocks_advance_independently_between_barriers() {
        // Shards sleep different amounts; each clock lands exactly on its
        // own deadline, not on a global one.
        let run = run_sharded::<(), _, _>(&opts(4, 7), |ctx| {
            let shard = ctx.shard();
            ctx.run(async move {
                let ns = 1_000 * (shard as u64 + 1);
                sleep(Duration::from_nanos(ns)).await;
                crate::now().as_nanos()
            })
        });
        assert_eq!(run.results, vec![1_000, 2_000, 3_000, 4_000]);
        let ends: Vec<u64> = run.stats.iter().map(|s| s.end_ns).collect();
        assert_eq!(ends, vec![1_000, 2_000, 3_000, 4_000]);
    }

    #[test]
    fn cross_shard_messages_deliver_at_stamped_times() {
        let hits: Arc<Mutex<Vec<(usize, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));
        let hits2 = Arc::clone(&hits);
        let run = run_sharded::<u64, _, _>(&opts(2, 11), move |ctx| {
            let shard = ctx.shard();
            let hits = Arc::clone(&hits2);
            ctx.set_handler(move |m| {
                hits.lock()
                    .unwrap()
                    .push((shard, crate::now().as_nanos(), m));
            });
            let tx = ctx.sender();
            ctx.run(async move {
                if shard == 0 {
                    // Send three messages to shard 1 at staggered times.
                    for i in 0..3u64 {
                        sleep(Duration::from_micros(10)).await;
                        let at = SimTime::from_nanos(crate::now().as_nanos() + 5_000 + i);
                        tx.send(1, at, 0, 100 + i);
                    }
                } else {
                    // Keep shard 1 alive long enough to receive them.
                    sleep(Duration::from_micros(60)).await;
                }
            })
        });
        let hits = hits.lock().unwrap();
        assert_eq!(
            *hits,
            vec![
                (1, 15_000, 100),
                (1, 25_001, 101),
                (1, 35_002, 102),
            ]
        );
        assert_eq!(run.stats[0].sent, 3);
        assert_eq!(run.stats[1].received, 3);
    }

    #[test]
    fn same_instant_deliveries_order_by_stream_then_seq() {
        // Shards 1 and 2 both send to shard 0 with the same deliver_at;
        // delivery order must follow (stream, seq), not arrival order.
        let log: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let log2 = Arc::clone(&log);
        run_sharded::<u64, _, _>(&opts(3, 5), move |ctx| {
            let shard = ctx.shard();
            let log = Arc::clone(&log2);
            ctx.set_handler(move |m| log.lock().unwrap().push(m));
            let tx = ctx.sender();
            ctx.run(async move {
                match shard {
                    0 => sleep(Duration::from_micros(100)).await,
                    s => {
                        // Both senders stamp the same delivery instant;
                        // stream id = shard id.
                        let at = SimTime::from_nanos(50_000);
                        tx.send(0, at, s as u64, s as u64 * 10);
                        tx.send(0, at, s as u64, s as u64 * 10 + 1);
                    }
                }
            })
        });
        assert_eq!(*log.lock().unwrap(), vec![10, 11, 20, 21]);
    }

    #[test]
    fn lookahead_violation_panics() {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sharded::<u64, _, _>(&opts(2, 1), |ctx| {
                let tx = ctx.sender();
                let shard = ctx.shard();
                ctx.run(async move {
                    if shard == 0 {
                        // 1ns ahead < 5us lookahead: must panic.
                        let at = SimTime::from_nanos(crate::now().as_nanos() + 1);
                        tx.send(1, at, 0, 0);
                    }
                    sleep(Duration::from_micros(10)).await;
                })
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn peer_panic_does_not_hang_the_pool() {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sharded::<(), _, _>(&opts(2, 3), |ctx| {
                let shard = ctx.shard();
                ctx.run(async move {
                    if shard == 1 {
                        panic!("boom");
                    }
                    // Shard 0 would wait at the barrier forever without
                    // abort propagation.
                    sleep(Duration::from_millis(1)).await;
                })
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn spsc_ring_overflow_takes_spill_path() {
        static RECEIVED: AtomicU64 = AtomicU64::new(0);
        RECEIVED.store(0, Ordering::Relaxed);
        let total = (RING_CAP + 100) as u64;
        let run = run_sharded::<u64, _, _>(&opts(2, 9), move |ctx| {
            let shard = ctx.shard();
            ctx.set_handler(move |_| {
                RECEIVED.fetch_add(1, Ordering::Relaxed);
            });
            let tx = ctx.sender();
            ctx.run(async move {
                if shard == 0 {
                    // One burst larger than the ring within a single window.
                    let at = SimTime::from_nanos(crate::now().as_nanos() + 100_000);
                    for i in 0..total {
                        tx.send(1, at, 0, i);
                    }
                } else {
                    sleep(Duration::from_micros(200)).await;
                }
            })
        });
        assert_eq!(RECEIVED.load(Ordering::Relaxed), total);
        assert!(run.stats[0].spilled > 0);
    }

    #[test]
    fn deadlock_panics_with_shard_id() {
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_sharded::<(), _, _>(&opts(2, 3), |ctx| {
                let shard = ctx.shard();
                ctx.run(async move {
                    if shard == 1 {
                        let (_tx, rx) = crate::sync::oneshot::channel::<()>();
                        let _ = rx.await; // never resolves
                    }
                })
            });
        }));
        let e = r.unwrap_err();
        let msg = e
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("deadlock"), "unexpected panic: {msg}");
    }
}
