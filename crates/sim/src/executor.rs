//! The single-threaded task executor and virtual-clock event loop.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};

use crate::rng::SimRng;
use crate::time::SimTime;

/// Ready queue shared with wakers. Wakers may be held by `Send` types (e.g.
/// stored inside `Waker`), so this piece uses `std::sync` even though the
/// runtime itself is single-threaded; the lock is never contended.
type ReadyQueue = Mutex<VecDeque<usize>>;

struct TimerEntry {
    deadline: u64,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deadline, self.seq).cmp(&(other.deadline, other.seq))
    }
}

type LocalFuture = Pin<Box<dyn Future<Output = ()>>>;

struct Slot {
    future: Option<LocalFuture>,
}

pub(crate) struct Inner {
    now: Cell<u64>,
    tasks: RefCell<Vec<Slot>>,
    free: RefCell<Vec<usize>>,
    live_tasks: Cell<usize>,
    ready: Arc<ReadyQueue>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    timer_seq: Cell<u64>,
    current_task: Cell<usize>,
    polls: Cell<u64>,
    pub(crate) rng: RefCell<SimRng>,
}

impl Inner {
    fn new(seed: u64) -> Rc<Self> {
        Rc::new(Inner {
            now: Cell::new(0),
            tasks: RefCell::new(Vec::new()),
            free: RefCell::new(Vec::new()),
            live_tasks: Cell::new(0),
            ready: Arc::new(Mutex::new(VecDeque::new())),
            timers: RefCell::new(BinaryHeap::new()),
            timer_seq: Cell::new(0),
            current_task: Cell::new(usize::MAX),
            polls: Cell::new(0),
            rng: RefCell::new(SimRng::seed_from_u64(seed)),
        })
    }

    pub(crate) fn now_nanos(&self) -> u64 {
        self.now.get()
    }

    /// Registers `waker` to be woken once the virtual clock reaches
    /// `deadline` (in nanoseconds).
    pub(crate) fn register_timer(&self, deadline: u64, waker: Waker) {
        let seq = self.timer_seq.get();
        self.timer_seq.set(seq + 1);
        self.timers.borrow_mut().push(Reverse(TimerEntry {
            deadline,
            seq,
            waker,
        }));
    }

    fn insert_task(&self, future: LocalFuture) -> usize {
        let id = match self.free.borrow_mut().pop() {
            Some(id) => {
                self.tasks.borrow_mut()[id] = Slot {
                    future: Some(future),
                };
                id
            }
            None => {
                let mut tasks = self.tasks.borrow_mut();
                tasks.push(Slot {
                    future: Some(future),
                });
                tasks.len() - 1
            }
        };
        self.live_tasks.set(self.live_tasks.get() + 1);
        id
    }

    fn schedule(&self, id: usize) {
        self.ready.lock().unwrap().push_back(id);
    }

    fn make_waker(&self, id: usize) -> Waker {
        let entry = Arc::new(WakeEntry {
            id,
            queue: Arc::downgrade(&self.ready),
        });
        waker_from_entry(entry)
    }

    /// Polls one task; returns true if a task existed.
    fn poll_task(self: &Rc<Self>, id: usize) -> bool {
        let mut future = {
            let mut tasks = self.tasks.borrow_mut();
            match tasks.get_mut(id).and_then(|s| s.future.take()) {
                Some(f) => f,
                None => return false, // already completed; spurious wake
            }
        };
        let waker = self.make_waker(id);
        let mut cx = Context::from_waker(&waker);
        let prev = self.current_task.get();
        self.current_task.set(id);
        self.polls.set(self.polls.get() + 1);
        let poll = future.as_mut().poll(&mut cx);
        self.current_task.set(prev);
        match poll {
            Poll::Ready(()) => {
                self.free.borrow_mut().push(id);
                self.live_tasks.set(self.live_tasks.get() - 1);
            }
            Poll::Pending => {
                self.tasks.borrow_mut()[id].future = Some(future);
            }
        }
        true
    }

    /// Fires every timer whose deadline is `<= now`.
    fn fire_due_timers(&self) {
        loop {
            let due = {
                let timers = self.timers.borrow();
                matches!(timers.peek(), Some(Reverse(e)) if e.deadline <= self.now.get())
            };
            if !due {
                break;
            }
            let entry = self.timers.borrow_mut().pop().unwrap().0;
            entry.waker.wake();
        }
    }
}

struct WakeEntry {
    id: usize,
    queue: Weak<ReadyQueue>,
}

fn waker_from_entry(entry: Arc<WakeEntry>) -> Waker {
    unsafe fn clone(data: *const ()) -> RawWaker {
        let arc = unsafe { Arc::from_raw(data as *const WakeEntry) };
        let cloned = Arc::clone(&arc);
        std::mem::forget(arc);
        RawWaker::new(Arc::into_raw(cloned) as *const (), &VTABLE)
    }
    unsafe fn wake(data: *const ()) {
        let arc = unsafe { Arc::from_raw(data as *const WakeEntry) };
        if let Some(queue) = arc.queue.upgrade() {
            queue.lock().unwrap().push_back(arc.id);
        }
    }
    unsafe fn wake_by_ref(data: *const ()) {
        let arc = unsafe { Arc::from_raw(data as *const WakeEntry) };
        if let Some(queue) = arc.queue.upgrade() {
            queue.lock().unwrap().push_back(arc.id);
        }
        std::mem::forget(arc);
    }
    unsafe fn drop_waker(data: *const ()) {
        drop(unsafe { Arc::from_raw(data as *const WakeEntry) });
    }
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);
    let raw = RawWaker::new(Arc::into_raw(entry) as *const (), &VTABLE);
    unsafe { Waker::from_raw(raw) }
}

thread_local! {
    static CURRENT: RefCell<Vec<Rc<Inner>>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn with_current<T>(f: impl FnOnce(&Rc<Inner>) -> T) -> T {
    CURRENT.with(|c| {
        let stack = c.borrow();
        let inner = stack
            .last()
            .expect("sim: no runtime is active on this thread; use Runtime::block_on");
        f(inner)
    })
}

/// Like [`with_current`] but returns `None` when no runtime is active instead
/// of panicking; used by telemetry, which must work outside a runtime.
pub(crate) fn try_with_current<T>(f: impl FnOnce(&Rc<Inner>) -> T) -> Option<T> {
    CURRENT.with(|c| {
        let stack = c.borrow();
        stack.last().map(f)
    })
}

struct EnterGuard;

impl EnterGuard {
    fn new(inner: Rc<Inner>) -> Self {
        CURRENT.with(|c| c.borrow_mut().push(inner));
        EnterGuard
    }
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Error returned by [`JoinHandle`] when the awaited task panicked or was
/// dropped before completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinError;

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task was cancelled or panicked before completion")
    }
}

impl std::error::Error for JoinError {}

/// Error returned by fallible spawn APIs (currently unused; reserved for a
/// bounded-tasks mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnError;

/// Handle to a spawned task. Awaiting it yields the task's output.
///
/// Dropping the handle detaches the task (it keeps running).
pub struct JoinHandle<T> {
    result: crate::sync::oneshot::Receiver<T>,
    id: usize,
}

impl<T> JoinHandle<T> {
    /// The slab id of the task, for debugging.
    pub fn id(&self) -> u64 {
        self.id as u64
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.result)
            .poll(cx)
            .map(|r| r.map_err(|_| JoinError))
    }
}

pub(crate) fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    with_current(|inner| {
        let (tx, rx) = crate::sync::oneshot::channel();
        let wrapped = Box::pin(async move {
            let out = future.await;
            let _ = tx.send(out);
        });
        let id = inner.insert_task(wrapped);
        inner.schedule(id);
        JoinHandle { result: rx, id }
    })
}

pub(crate) fn current_task_id() -> u64 {
    with_current(|inner| inner.current_task.get() as u64)
}

/// A deterministic, single-threaded async runtime with a virtual clock.
///
/// See the [crate docs](crate) for semantics. Runtimes may be nested (a
/// `block_on` inside a `block_on` uses a fresh runtime), though the simulation
/// code never needs that.
pub struct Runtime {
    inner: Rc<Inner>,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    /// Creates a runtime whose RNG is seeded with `0`.
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// Creates a runtime with a caller-chosen RNG seed. Two runs with the
    /// same seed and the same program produce identical virtual-time traces.
    pub fn with_seed(seed: u64) -> Self {
        Runtime {
            inner: Inner::new(seed),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.inner.now_nanos())
    }

    /// Total number of task polls executed so far (an activity metric used by
    /// the substrate benchmarks).
    pub fn poll_count(&self) -> u64 {
        self.inner.polls.get()
    }

    /// Runs `future` to completion, driving all spawned tasks and the virtual
    /// clock.
    ///
    /// # Panics
    /// Panics if the simulation deadlocks: the root future is pending but no
    /// task is runnable and no timer is registered.
    pub fn block_on<F>(&self, future: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let _guard = EnterGuard::new(Rc::clone(&self.inner));
        let result: Rc<RefCell<Option<F::Output>>> = Rc::new(RefCell::new(None));
        let result2 = Rc::clone(&result);
        let root = Box::pin(async move {
            let out = future.await;
            *result2.borrow_mut() = Some(out);
        });
        let root_id = self.inner.insert_task(root);
        self.inner.schedule(root_id);

        loop {
            // Drain the ready queue.
            loop {
                let next = self.inner.ready.lock().unwrap().pop_front();
                match next {
                    Some(id) => {
                        self.inner.poll_task(id);
                        if result.borrow().is_some() {
                            // Root future finished; remaining tasks are
                            // detached and dropped with the runtime state.
                            return result.borrow_mut().take().unwrap();
                        }
                    }
                    None => break,
                }
            }

            // Nothing runnable: advance the clock to the next timer.
            let next_deadline = {
                let timers = self.inner.timers.borrow();
                timers.peek().map(|Reverse(e)| e.deadline)
            };
            match next_deadline {
                Some(deadline) => {
                    debug_assert!(deadline >= self.inner.now.get());
                    self.inner.now.set(deadline.max(self.inner.now.get()));
                    self.inner.fire_due_timers();
                }
                None => {
                    panic!(
                        "sim: deadlock — root future pending, no runnable tasks, \
                         no timers ({} live tasks, t={}ns)",
                        self.inner.live_tasks.get(),
                        self.inner.now.get()
                    );
                }
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Drop remaining task futures before the runtime's shared state so
        // destructors that touch channels still find a consistent world.
        let mut tasks = self.inner.tasks.borrow_mut();
        for slot in tasks.iter_mut() {
            slot.future = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::sleep;
    use std::time::Duration;

    #[test]
    fn block_on_returns_value() {
        let rt = Runtime::new();
        assert_eq!(rt.block_on(async { 7 }), 7);
    }

    #[test]
    fn spawn_and_join() {
        let rt = Runtime::new();
        let v = rt.block_on(async {
            let a = crate::spawn(async { 1u64 });
            let b = crate::spawn(async { 2u64 });
            a.await.unwrap() + b.await.unwrap()
        });
        assert_eq!(v, 3);
    }

    #[test]
    fn virtual_time_advances_only_by_timers() {
        let rt = Runtime::new();
        let d = rt.block_on(async {
            let t0 = crate::now();
            sleep(Duration::from_millis(5)).await;
            sleep(Duration::from_micros(1)).await;
            crate::now() - t0
        });
        assert_eq!(d, Duration::from_nanos(5_001_000));
    }

    #[test]
    fn concurrent_sleeps_overlap() {
        let rt = Runtime::new();
        let d = rt.block_on(async {
            let t0 = crate::now();
            let a = crate::spawn(async { sleep(Duration::from_micros(10)).await });
            let b = crate::spawn(async { sleep(Duration::from_micros(10)).await });
            a.await.unwrap();
            b.await.unwrap();
            crate::now() - t0
        });
        assert_eq!(d, Duration::from_micros(10));
    }

    #[test]
    fn tasks_run_in_spawn_order_at_same_time() {
        let rt = Runtime::new();
        let order = rt.block_on(async {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..8 {
                let log = Rc::clone(&log);
                handles.push(crate::spawn(async move {
                    log.borrow_mut().push(i);
                }));
            }
            for h in handles {
                h.await.unwrap();
            }
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_panics() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (_tx, rx) = crate::sync::oneshot::channel::<()>();
            let _ = rx.await;
        });
    }

    #[test]
    fn detached_task_keeps_running() {
        let rt = Runtime::new();
        let v = rt.block_on(async {
            let flag = Rc::new(Cell::new(false));
            let f2 = Rc::clone(&flag);
            drop(crate::spawn(async move {
                sleep(Duration::from_micros(1)).await;
                f2.set(true);
            }));
            sleep(Duration::from_micros(2)).await;
            flag.get()
        });
        assert!(v);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<u64> {
            let rt = Runtime::with_seed(seed);
            rt.block_on(async {
                let mut out = Vec::new();
                for _ in 0..10 {
                    let d = crate::rng::range_u64(1..100);
                    sleep(Duration::from_nanos(d)).await;
                    out.push(crate::now().as_nanos());
                }
                out
            })
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
