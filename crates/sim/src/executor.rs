//! The single-threaded task executor and virtual-clock event loop.
//!
//! Engineered for an allocation-free steady state (see DESIGN.md,
//! "Performance engineering"):
//!
//! * timers live in a hierarchical [`Wheel`](crate::wheel::Wheel), not a
//!   `BinaryHeap` — O(1) amortised insert/fire, capacity retained;
//! * the ready queue is a plain `VecDeque` behind an owner-checked
//!   `UnsafeCell` — the runtime is single-threaded, so the old `Mutex` only
//!   bought uncontended lock traffic;
//! * each task slot caches its `Waker` once; `cx.waker().clone()` is a
//!   refcount bump instead of a fresh `Arc` per poll;
//! * spawned futures are placed in a size-class **task arena**: completing a
//!   task returns its memory to a free list keyed by rounded future size, so
//!   a steady-state workload (e.g. one NIC work-request task per record)
//!   re-uses the same allocations instead of boxing each future.

use std::alloc::{alloc, dealloc, Layout};
use std::cell::{Cell, RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::ptr::NonNull;
use std::rc::Rc;
use std::sync::{Arc, Weak};
use std::task::{Context, Poll, RawWaker, RawWakerVTable, Waker};
use std::thread::ThreadId;

use crate::rng::SimRng;
use crate::time::SimTime;
use crate::wheel::Wheel;

/// Ready queue shared with wakers. Wakers may be stored inside `Send` types,
/// so the queue is reached through an `Arc`, but the runtime is
/// single-threaded: instead of a `Mutex` we use an `UnsafeCell` guarded by an
/// owner-thread check (a waker crossing threads panics instead of racing).
struct ReadyQueue {
    owner: ThreadId,
    queue: UnsafeCell<VecDeque<usize>>,
}

// SAFETY: every access goes through `with`, which panics unless called from
// the thread that created the queue; there is no actual sharing.
unsafe impl Send for ReadyQueue {}
unsafe impl Sync for ReadyQueue {}

impl ReadyQueue {
    fn new() -> Self {
        ReadyQueue {
            owner: std::thread::current().id(),
            queue: UnsafeCell::new(VecDeque::new()),
        }
    }

    #[inline]
    fn with<R>(&self, f: impl FnOnce(&mut VecDeque<usize>) -> R) -> R {
        assert!(
            std::thread::current().id() == self.owner,
            "sim: waker used off the runtime thread"
        );
        // SAFETY: single-threaded by the owner check above, and no caller
        // re-enters `with` from inside the closure.
        unsafe { f(&mut *self.queue.get()) }
    }

    fn push(&self, id: usize) {
        self.with(|q| q.push_back(id));
    }

    fn pop(&self) -> Option<usize> {
        self.with(|q| q.pop_front())
    }
}

/// Pooled task allocations are rounded up to a power-of-two size class:
/// 16, 32, ... 64 KiB. Larger or over-aligned futures fall back to exact
/// one-shot allocations.
const TASK_ALIGN: usize = 16;
const MIN_CLASS_SHIFT: u32 = 4; // 16 bytes
const NUM_CLASSES: usize = 13; // up to 16 << 12 = 64 KiB
const UNPOOLED: usize = usize::MAX;

/// A spawned future placed in arena memory, with monomorphised poll/drop
/// thunks — a manually laid-out `Box<dyn Future>` whose allocation can be
/// recycled.
struct RawTask {
    ptr: NonNull<u8>,
    poll_fn: unsafe fn(*mut u8, &mut Context<'_>) -> Poll<()>,
    drop_fn: unsafe fn(*mut u8),
    /// Size-class index, or [`UNPOOLED`] for exact-layout one-offs.
    class: usize,
    layout: Layout,
}

impl RawTask {
    fn poll(&mut self, cx: &mut Context<'_>) -> Poll<()> {
        // SAFETY: `ptr` holds a live, pinned `F`; `poll_fn` is the matching
        // monomorphisation. The future never moves until `drop_fn`.
        unsafe { (self.poll_fn)(self.ptr.as_ptr(), cx) }
    }
}

unsafe fn poll_raw<F: Future<Output = ()>>(ptr: *mut u8, cx: &mut Context<'_>) -> Poll<()> {
    // SAFETY: caller guarantees `ptr` points at a live `F` that is never
    // moved (arena placement is stable until drop).
    unsafe { Pin::new_unchecked(&mut *ptr.cast::<F>()).poll(cx) }
}

unsafe fn drop_raw<F>(ptr: *mut u8) {
    // SAFETY: caller guarantees `ptr` points at a live `F`, dropped once.
    unsafe { std::ptr::drop_in_place(ptr.cast::<F>()) }
}

/// Free lists of recycled task allocations, one per size class.
struct TaskArena {
    free: [Vec<NonNull<u8>>; NUM_CLASSES],
}

impl TaskArena {
    fn new() -> Self {
        TaskArena {
            free: std::array::from_fn(|_| Vec::new()),
        }
    }

    fn place<F: Future<Output = ()> + 'static>(&mut self, future: F) -> RawTask {
        let size = std::mem::size_of::<F>().max(1);
        let (class, layout) = if std::mem::align_of::<F>() <= TASK_ALIGN
            && size <= (1usize << MIN_CLASS_SHIFT) << (NUM_CLASSES - 1)
        {
            let class = (size.next_power_of_two().trailing_zeros().max(MIN_CLASS_SHIFT)
                - MIN_CLASS_SHIFT) as usize;
            let bytes = 1usize << (MIN_CLASS_SHIFT + class as u32);
            (class, Layout::from_size_align(bytes, TASK_ALIGN).unwrap())
        } else {
            (UNPOOLED, Layout::new::<F>())
        };
        let ptr = match (class != UNPOOLED).then(|| self.free[class].pop()).flatten() {
            Some(p) => p,
            // SAFETY: layout has non-zero size (size >= 1, rounded up).
            None => NonNull::new(unsafe { alloc(layout) }).expect("sim: task allocation failed"),
        };
        // SAFETY: `ptr` is valid for `layout` which covers `F`'s size/align.
        unsafe { ptr.as_ptr().cast::<F>().write(future) };
        RawTask {
            ptr,
            poll_fn: poll_raw::<F>,
            drop_fn: drop_raw::<F>,
            class,
            layout,
        }
    }

    /// Drops the task's future and recycles (or frees) its memory.
    fn retire(&mut self, task: RawTask) {
        // SAFETY: the future is live and this is its single drop.
        unsafe { (task.drop_fn)(task.ptr.as_ptr()) };
        if task.class == UNPOOLED {
            // SAFETY: allocated with exactly this layout.
            unsafe { dealloc(task.ptr.as_ptr(), task.layout) };
        } else {
            self.free[task.class].push(task.ptr);
        }
    }
}

impl Drop for TaskArena {
    fn drop(&mut self) {
        for (class, list) in self.free.iter_mut().enumerate() {
            let layout =
                Layout::from_size_align(1usize << (MIN_CLASS_SHIFT + class as u32), TASK_ALIGN)
                    .unwrap();
            for ptr in list.drain(..) {
                // SAFETY: free-listed pointers were allocated with their
                // class layout and hold no live future.
                unsafe { dealloc(ptr.as_ptr(), layout) };
            }
        }
    }
}

struct Slot {
    task: Option<RawTask>,
    /// Created once per slot; slot reuse keeps the same id, so the waker
    /// stays valid and `clone()` is a refcount bump.
    waker: Waker,
}

pub(crate) struct Inner {
    now: Cell<u64>,
    tasks: RefCell<Vec<Slot>>,
    free: RefCell<Vec<usize>>,
    live_tasks: Cell<usize>,
    ready: Arc<ReadyQueue>,
    timers: RefCell<Wheel<Waker>>,
    /// Reusable buffer for due-timer batches.
    firing: RefCell<Vec<(u64, u64, Waker)>>,
    arena: RefCell<TaskArena>,
    timer_seq: Cell<u64>,
    current_task: Cell<usize>,
    polls: Cell<u64>,
    pub(crate) rng: RefCell<SimRng>,
}

impl Inner {
    fn new(seed: u64) -> Rc<Self> {
        Rc::new(Inner {
            now: Cell::new(0),
            tasks: RefCell::new(Vec::new()),
            free: RefCell::new(Vec::new()),
            live_tasks: Cell::new(0),
            ready: Arc::new(ReadyQueue::new()),
            timers: RefCell::new(Wheel::new()),
            firing: RefCell::new(Vec::new()),
            arena: RefCell::new(TaskArena::new()),
            timer_seq: Cell::new(0),
            current_task: Cell::new(usize::MAX),
            polls: Cell::new(0),
            rng: RefCell::new(SimRng::seed_from_u64(seed)),
        })
    }

    pub(crate) fn now_nanos(&self) -> u64 {
        self.now.get()
    }

    /// Registers `waker` to be woken once the virtual clock reaches
    /// `deadline` (in nanoseconds).
    pub(crate) fn register_timer(&self, deadline: u64, waker: Waker) {
        let seq = self.timer_seq.get();
        self.timer_seq.set(seq + 1);
        self.timers.borrow_mut().insert(deadline, seq, waker);
    }

    fn insert_task<F: Future<Output = ()> + 'static>(&self, future: F) -> usize {
        let task = self.arena.borrow_mut().place(future);
        let id = match self.free.borrow_mut().pop() {
            Some(id) => {
                self.tasks.borrow_mut()[id].task = Some(task);
                id
            }
            None => {
                let mut tasks = self.tasks.borrow_mut();
                let id = tasks.len();
                tasks.push(Slot {
                    task: Some(task),
                    waker: make_waker(id, Arc::downgrade(&self.ready)),
                });
                id
            }
        };
        self.live_tasks.set(self.live_tasks.get() + 1);
        id
    }

    fn schedule(&self, id: usize) {
        self.ready.push(id);
    }

    /// Polls one task; returns true if a task existed.
    fn poll_task(self: &Rc<Self>, id: usize) -> bool {
        let (task, waker) = {
            let mut tasks = self.tasks.borrow_mut();
            let Some(slot) = tasks.get_mut(id) else {
                return false;
            };
            match slot.task.take() {
                Some(t) => (t, slot.waker.clone()),
                None => return false, // already completed; spurious wake
            }
        };
        // If the poll panics, the guard still drops the future and recycles
        // its arena memory during unwind.
        struct Retire<'a> {
            inner: &'a Inner,
            task: Option<RawTask>,
        }
        impl Drop for Retire<'_> {
            fn drop(&mut self) {
                if let Some(t) = self.task.take() {
                    self.inner.arena.borrow_mut().retire(t);
                }
            }
        }
        let mut guard = Retire {
            inner: self,
            task: Some(task),
        };
        let mut cx = Context::from_waker(&waker);
        let prev = self.current_task.get();
        self.current_task.set(id);
        self.polls.set(self.polls.get() + 1);
        let poll = guard.task.as_mut().unwrap().poll(&mut cx);
        self.current_task.set(prev);
        match poll {
            Poll::Ready(()) => {
                drop(guard); // retires the task
                self.free.borrow_mut().push(id);
                self.live_tasks.set(self.live_tasks.get() - 1);
            }
            Poll::Pending => {
                self.tasks.borrow_mut()[id].task = guard.task.take();
            }
        }
        true
    }

    /// Earliest pending timer deadline, without perturbing the wheel cursor.
    ///
    /// The sharded executor calls this between lookahead windows to report
    /// the shard's next event time; the cursor must not advance because
    /// mailbox deliveries registered *after* this query may target nearer
    /// deadlines (a cursor run ahead would misfile them).
    pub(crate) fn peek_next_deadline(&self) -> Option<u64> {
        self.timers.borrow().peek_min_deadline()
    }

    /// True when tasks are queued for polling.
    pub(crate) fn has_ready(&self) -> bool {
        self.ready.with(|q| !q.is_empty())
    }

    /// Polls ready tasks until the queue is empty or `stop()` turns true.
    /// Mirrors the drain phase of [`Runtime::block_on`], including the
    /// immediate return the moment the root future completes.
    pub(crate) fn drain_ready(self: &Rc<Self>, stop: &mut dyn FnMut() -> bool) -> bool {
        while let Some(id) = self.ready.pop() {
            self.poll_task(id);
            if stop() {
                return true;
            }
        }
        false
    }

    /// Executes every event with virtual time strictly below `bound`: drains
    /// the ready queue, then repeatedly advances the clock to the nearest
    /// timer deadline `< bound` and fires it, exactly as `block_on` would.
    /// The clock only ever advances to *fired* deadlines — never to `bound`
    /// itself — so a shard's `now` always names its last executed event.
    ///
    /// Returns true if `stop()` ended the window early (root completed).
    pub(crate) fn run_window(self: &Rc<Self>, bound: u64, stop: &mut dyn FnMut() -> bool) -> bool {
        loop {
            if self.drain_ready(stop) {
                return true;
            }
            let next = self
                .timers
                .borrow_mut()
                .next_deadline_bounded(bound.saturating_sub(1));
            match next {
                Some(deadline) => {
                    debug_assert!(deadline >= self.now.get());
                    self.now.set(deadline.max(self.now.get()));
                    self.fire_due_timers();
                }
                None => return false,
            }
        }
    }

    /// Fires every timer whose deadline is `<= now`, in `(deadline, seq)`
    /// order.
    fn fire_due_timers(&self) {
        let mut firing = self.firing.borrow_mut();
        debug_assert!(firing.is_empty());
        self.timers.borrow_mut().pop_due(self.now.get(), &mut firing);
        for (_, _, waker) in firing.drain(..) {
            // Wakes only push task ids onto the ready queue; they cannot
            // touch the wheel, so no re-entrancy.
            waker.wake();
        }
    }
}

struct WakeEntry {
    id: usize,
    queue: Weak<ReadyQueue>,
}

fn make_waker(id: usize, queue: Weak<ReadyQueue>) -> Waker {
    let entry = Arc::new(WakeEntry { id, queue });
    unsafe fn clone(data: *const ()) -> RawWaker {
        let arc = unsafe { Arc::from_raw(data as *const WakeEntry) };
        let cloned = Arc::clone(&arc);
        std::mem::forget(arc);
        RawWaker::new(Arc::into_raw(cloned) as *const (), &VTABLE)
    }
    unsafe fn wake(data: *const ()) {
        let arc = unsafe { Arc::from_raw(data as *const WakeEntry) };
        if let Some(queue) = arc.queue.upgrade() {
            queue.push(arc.id);
        }
    }
    unsafe fn wake_by_ref(data: *const ()) {
        let arc = unsafe { Arc::from_raw(data as *const WakeEntry) };
        if let Some(queue) = arc.queue.upgrade() {
            queue.push(arc.id);
        }
        std::mem::forget(arc);
    }
    unsafe fn drop_waker(data: *const ()) {
        drop(unsafe { Arc::from_raw(data as *const WakeEntry) });
    }
    static VTABLE: RawWakerVTable = RawWakerVTable::new(clone, wake, wake_by_ref, drop_waker);
    let raw = RawWaker::new(Arc::into_raw(entry) as *const (), &VTABLE);
    unsafe { Waker::from_raw(raw) }
}

thread_local! {
    static CURRENT: RefCell<Vec<Rc<Inner>>> = const { RefCell::new(Vec::new()) };
}

pub(crate) fn with_current<T>(f: impl FnOnce(&Rc<Inner>) -> T) -> T {
    CURRENT.with(|c| {
        let stack = c.borrow();
        let inner = stack
            .last()
            .expect("sim: no runtime is active on this thread; use Runtime::block_on");
        f(inner)
    })
}

/// Like [`with_current`] but returns `None` when no runtime is active instead
/// of panicking; used by telemetry, which must work outside a runtime.
pub(crate) fn try_with_current<T>(f: impl FnOnce(&Rc<Inner>) -> T) -> Option<T> {
    CURRENT.with(|c| {
        let stack = c.borrow();
        stack.last().map(f)
    })
}

pub(crate) struct EnterGuard;

impl EnterGuard {
    fn new(inner: Rc<Inner>) -> Self {
        CURRENT.with(|c| c.borrow_mut().push(inner));
        EnterGuard
    }
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Error returned by [`JoinHandle`] when the awaited task panicked or was
/// dropped before completing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JoinError;

impl fmt::Display for JoinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task was cancelled or panicked before completion")
    }
}

impl std::error::Error for JoinError {}

/// Error returned by fallible spawn APIs (currently unused; reserved for a
/// bounded-tasks mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnError;

/// Handle to a spawned task. Awaiting it yields the task's output.
///
/// Dropping the handle detaches the task (it keeps running).
pub struct JoinHandle<T> {
    result: crate::sync::oneshot::Receiver<T>,
    id: usize,
}

impl<T> JoinHandle<T> {
    /// The slab id of the task, for debugging.
    pub fn id(&self) -> u64 {
        self.id as u64
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = Result<T, JoinError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        Pin::new(&mut self.result)
            .poll(cx)
            .map(|r| r.map_err(|_| JoinError))
    }
}

pub(crate) fn spawn<F>(future: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    with_current(|inner| {
        let (tx, rx) = crate::sync::oneshot::channel();
        let id = inner.insert_task(async move {
            let out = future.await;
            let _ = tx.send(out);
        });
        inner.schedule(id);
        JoinHandle { result: rx, id }
    })
}

/// Spawns a task with no [`JoinHandle`]: no completion channel is allocated.
/// The hot-path choice for fire-and-forget tasks (NIC work requests, queue
/// handoffs) whose handle would be dropped anyway.
pub(crate) fn spawn_detached<F>(future: F)
where
    F: Future<Output = ()> + 'static,
{
    with_current(|inner| {
        let id = inner.insert_task(future);
        inner.schedule(id);
    });
}

pub(crate) fn current_task_id() -> u64 {
    with_current(|inner| inner.current_task.get() as u64)
}

/// Handle to a runtime's root task, installed by [`Runtime::spawn_root`].
/// The sharded window loop polls [`RootTask::is_done`] after every task poll,
/// mirroring `block_on`'s immediate return on root completion.
pub(crate) struct RootTask<T> {
    result: Rc<RefCell<Option<T>>>,
}

impl<T> RootTask<T> {
    pub(crate) fn is_done(&self) -> bool {
        self.result.borrow().is_some()
    }

    pub(crate) fn take(&self) -> Option<T> {
        self.result.borrow_mut().take()
    }
}

/// A deterministic, single-threaded async runtime with a virtual clock.
///
/// See the [crate docs](crate) for semantics. Runtimes may be nested (a
/// `block_on` inside a `block_on` uses a fresh runtime), though the simulation
/// code never needs that.
pub struct Runtime {
    inner: Rc<Inner>,
}

impl Default for Runtime {
    fn default() -> Self {
        Self::new()
    }
}

impl Runtime {
    /// Creates a runtime whose RNG is seeded with `0`.
    pub fn new() -> Self {
        Self::with_seed(0)
    }

    /// Creates a runtime with a caller-chosen RNG seed. Two runs with the
    /// same seed and the same program produce identical virtual-time traces.
    pub fn with_seed(seed: u64) -> Self {
        Runtime {
            inner: Inner::new(seed),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        SimTime::from_nanos(self.inner.now_nanos())
    }

    /// Total number of task polls executed so far (an activity metric used by
    /// the substrate benchmarks).
    pub fn poll_count(&self) -> u64 {
        self.inner.polls.get()
    }

    /// Makes this runtime the ambient runtime on the current thread until
    /// the guard drops. Used by the sharded executor, whose window loop
    /// interleaves execution with barrier waits instead of one `block_on`.
    pub(crate) fn enter(&self) -> EnterGuard {
        EnterGuard::new(Rc::clone(&self.inner))
    }

    pub(crate) fn inner(&self) -> &Rc<Inner> {
        &self.inner
    }

    /// Installs `future` as this runtime's root task without driving it,
    /// exactly as the prelude of [`Runtime::block_on`] does (same task-id and
    /// allocation pattern, so `shards=1` stays bit-identical to `block_on`).
    pub(crate) fn spawn_root<F>(&self, future: F) -> RootTask<F::Output>
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let result: Rc<RefCell<Option<F::Output>>> = Rc::new(RefCell::new(None));
        let result2 = Rc::clone(&result);
        let root_id = self.inner.insert_task(async move {
            let out = future.await;
            *result2.borrow_mut() = Some(out);
        });
        self.inner.schedule(root_id);
        RootTask { result }
    }

    /// Runs `future` to completion, driving all spawned tasks and the virtual
    /// clock.
    ///
    /// # Panics
    /// Panics if the simulation deadlocks: the root future is pending but no
    /// task is runnable and no timer is registered.
    pub fn block_on<F>(&self, future: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let _guard = EnterGuard::new(Rc::clone(&self.inner));
        let result: Rc<RefCell<Option<F::Output>>> = Rc::new(RefCell::new(None));
        let result2 = Rc::clone(&result);
        let root_id = self.inner.insert_task(async move {
            let out = future.await;
            *result2.borrow_mut() = Some(out);
        });
        self.inner.schedule(root_id);

        loop {
            // Drain the ready queue.
            while let Some(id) = self.inner.ready.pop() {
                self.inner.poll_task(id);
                if result.borrow().is_some() {
                    // Root future finished; remaining tasks are detached and
                    // dropped with the runtime state.
                    return result.borrow_mut().take().unwrap();
                }
            }

            // Nothing runnable: advance the clock to the next timer. (Bind
            // first: a `borrow_mut` in the scrutinee would live across the
            // arms and collide with `fire_due_timers`.)
            let next_deadline = self.inner.timers.borrow_mut().next_deadline();
            match next_deadline {
                Some(deadline) => {
                    debug_assert!(deadline >= self.inner.now.get());
                    self.inner.now.set(deadline.max(self.inner.now.get()));
                    self.inner.fire_due_timers();
                }
                None => {
                    panic!(
                        "sim: deadlock — root future pending, no runnable tasks, \
                         no timers ({} live tasks, t={}ns)",
                        self.inner.live_tasks.get(),
                        self.inner.now.get()
                    );
                }
            }
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Drop remaining task futures before the runtime's shared state so
        // destructors that touch channels still find a consistent world.
        let mut tasks = self.inner.tasks.borrow_mut();
        let mut arena = self.inner.arena.borrow_mut();
        for slot in tasks.iter_mut() {
            if let Some(task) = slot.task.take() {
                arena.retire(task);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::sleep;
    use std::time::Duration;

    #[test]
    fn block_on_returns_value() {
        let rt = Runtime::new();
        assert_eq!(rt.block_on(async { 7 }), 7);
    }

    #[test]
    fn spawn_and_join() {
        let rt = Runtime::new();
        let v = rt.block_on(async {
            let a = crate::spawn(async { 1u64 });
            let b = crate::spawn(async { 2u64 });
            a.await.unwrap() + b.await.unwrap()
        });
        assert_eq!(v, 3);
    }

    #[test]
    fn virtual_time_advances_only_by_timers() {
        let rt = Runtime::new();
        let d = rt.block_on(async {
            let t0 = crate::now();
            sleep(Duration::from_millis(5)).await;
            sleep(Duration::from_micros(1)).await;
            crate::now() - t0
        });
        assert_eq!(d, Duration::from_nanos(5_001_000));
    }

    #[test]
    fn concurrent_sleeps_overlap() {
        let rt = Runtime::new();
        let d = rt.block_on(async {
            let t0 = crate::now();
            let a = crate::spawn(async { sleep(Duration::from_micros(10)).await });
            let b = crate::spawn(async { sleep(Duration::from_micros(10)).await });
            a.await.unwrap();
            b.await.unwrap();
            crate::now() - t0
        });
        assert_eq!(d, Duration::from_micros(10));
    }

    #[test]
    fn tasks_run_in_spawn_order_at_same_time() {
        let rt = Runtime::new();
        let order = rt.block_on(async {
            let log = Rc::new(RefCell::new(Vec::new()));
            let mut handles = Vec::new();
            for i in 0..8 {
                let log = Rc::clone(&log);
                handles.push(crate::spawn(async move {
                    log.borrow_mut().push(i);
                }));
            }
            for h in handles {
                h.await.unwrap();
            }
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_panics() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (_tx, rx) = crate::sync::oneshot::channel::<()>();
            let _ = rx.await;
        });
    }

    #[test]
    fn detached_task_keeps_running() {
        let rt = Runtime::new();
        let v = rt.block_on(async {
            let flag = Rc::new(Cell::new(false));
            let f2 = Rc::clone(&flag);
            drop(crate::spawn(async move {
                sleep(Duration::from_micros(1)).await;
                f2.set(true);
            }));
            sleep(Duration::from_micros(2)).await;
            flag.get()
        });
        assert!(v);
    }

    #[test]
    fn spawn_detached_runs_to_completion() {
        let rt = Runtime::new();
        let v = rt.block_on(async {
            let hits = Rc::new(Cell::new(0u32));
            for i in 0..100u64 {
                let hits = Rc::clone(&hits);
                crate::spawn_detached(async move {
                    sleep(Duration::from_nanos(i % 7)).await;
                    hits.set(hits.get() + 1);
                });
            }
            sleep(Duration::from_micros(1)).await;
            hits.get()
        });
        assert_eq!(v, 100);
    }

    #[test]
    fn arena_recycles_across_many_generations() {
        // Churn far more tasks than are ever live at once: the arena (and
        // slot slab) must stay bounded and behaviourally invisible.
        let rt = Runtime::new();
        let total = rt.block_on(async {
            let sum = Rc::new(Cell::new(0u64));
            for round in 0..200u64 {
                let mut handles = Vec::new();
                for i in 0..8u64 {
                    let sum = Rc::clone(&sum);
                    handles.push(crate::spawn(async move {
                        sleep(Duration::from_nanos(round + i)).await;
                        sum.set(sum.get() + 1);
                    }));
                }
                for h in handles {
                    h.await.unwrap();
                }
            }
            sum.get()
        });
        assert_eq!(total, 1600);
    }

    #[test]
    fn scattered_deadlines_fire_in_deadline_order() {
        let rt = Runtime::new();
        let order = rt.block_on(async {
            let log = Rc::new(RefCell::new(Vec::new()));
            // Deliberately spans several wheel levels.
            for &us in &[500u64, 3, 70_000, 1, 900, 12, 4_096, 64] {
                let log = Rc::clone(&log);
                crate::spawn_detached(async move {
                    sleep(Duration::from_micros(us)).await;
                    log.borrow_mut().push(us);
                });
            }
            sleep(Duration::from_millis(100)).await;
            Rc::try_unwrap(log).unwrap().into_inner()
        });
        assert_eq!(order, vec![1, 3, 12, 64, 500, 900, 4_096, 70_000]);
    }

    #[test]
    fn determinism_same_seed_same_trace() {
        fn run(seed: u64) -> Vec<u64> {
            let rt = Runtime::with_seed(seed);
            rt.block_on(async {
                let mut out = Vec::new();
                for _ in 0..10 {
                    let d = crate::rng::range_u64(1..100);
                    sleep(Duration::from_nanos(d)).await;
                    out.push(crate::now().as_nanos());
                }
                out
            })
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
