//! A single-value broadcast channel ("watch"), modelled on
//! `tokio::sync::watch`.
//!
//! The broker uses this to publish per-partition high-watermark changes to
//! interested tasks (e.g. delayed TCP fetches waiting for new data).

use std::cell::RefCell;
use std::rc::Rc;
use std::task::{Poll, Waker};

struct Shared<T> {
    value: T,
    version: u64,
    sender_alive: bool,
    wakers: Vec<Waker>,
}

/// Sending half: replaces the value and notifies receivers.
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Receiving half: observes the latest value and awaits changes.
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
    seen: u64,
}

/// Creates a watch channel with an initial value.
pub fn channel<T>(initial: T) -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        value: initial,
        version: 0,
        sender_alive: true,
        wakers: Vec::new(),
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
        },
        Receiver { shared, seen: 0 },
    )
}

impl<T> Sender<T> {
    /// Replaces the value and wakes all waiting receivers.
    pub fn send(&self, value: T) {
        let mut s = self.shared.borrow_mut();
        s.value = value;
        s.version += 1;
        let wakers = std::mem::take(&mut s.wakers);
        drop(s);
        for w in wakers {
            w.wake();
        }
    }

    /// Mutates the value in place and notifies.
    pub fn send_modify(&self, f: impl FnOnce(&mut T)) {
        let mut s = self.shared.borrow_mut();
        f(&mut s.value);
        s.version += 1;
        let wakers = std::mem::take(&mut s.wakers);
        drop(s);
        for w in wakers {
            w.wake();
        }
    }

    /// Reads the current value.
    pub fn borrow_value<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.shared.borrow().value)
    }

    /// Creates an additional receiver that has not yet observed the current
    /// version (its first `changed().await` returns immediately).
    pub fn subscribe(&self) -> Receiver<T> {
        Receiver {
            shared: Rc::clone(&self.shared),
            seen: 0,
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.shared.borrow_mut();
        s.sender_alive = false;
        let wakers = std::mem::take(&mut s.wakers);
        drop(s);
        for w in wakers {
            w.wake();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        Receiver {
            shared: Rc::clone(&self.shared),
            seen: self.seen,
        }
    }
}

impl<T> Receiver<T> {
    /// Reads the current value (marking it seen).
    pub fn borrow_and_update<R>(&mut self, f: impl FnOnce(&T) -> R) -> R {
        let s = self.shared.borrow();
        self.seen = s.version;
        f(&s.value)
    }

    /// Reads the current value without marking it seen.
    pub fn borrow_value<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.shared.borrow().value)
    }

    /// Waits until the value changes past the last version this receiver
    /// observed. Returns `Err(())` if the sender is gone.
    pub async fn changed(&mut self) -> Result<(), ()> {
        std::future::poll_fn(|cx| {
            let mut s = self.shared.borrow_mut();
            if s.version != self.seen {
                self.seen = s.version;
                return Poll::Ready(Ok(()));
            }
            if !s.sender_alive {
                return Poll::Ready(Err(()));
            }
            s.wakers.push(cx.waker().clone());
            Poll::Pending
        })
        .await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::time::Duration;

    #[test]
    fn receives_latest_value() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, mut rx) = channel(0u64);
            tx.send(1);
            tx.send(2);
            rx.changed().await.unwrap();
            assert_eq!(rx.borrow_and_update(|v| *v), 2);
        });
    }

    #[test]
    fn changed_waits() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, mut rx) = channel(0u64);
            rx.borrow_and_update(|_| ());
            crate::spawn(async move {
                crate::time::sleep(Duration::from_micros(7)).await;
                tx.send(5);
                // Keep the sender alive until after the assertion.
                crate::time::sleep(Duration::from_micros(7)).await;
            });
            rx.changed().await.unwrap();
            assert_eq!(crate::now().as_nanos(), 7_000);
            assert_eq!(rx.borrow_value(|v| *v), 5);
        });
    }

    #[test]
    fn sender_drop_errors() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, mut rx) = channel(0u64);
            rx.borrow_and_update(|_| ());
            drop(tx);
            assert_eq!(rx.changed().await, Err(()));
        });
    }
}
