//! A counting semaphore with FIFO fairness.
//!
//! This backs the credit-based flow control of the RDMA push-replication
//! module (paper §4.3.2): the follower grants credits; the leader acquires
//! one per outstanding replicate request.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct State {
    permits: usize,
    closed: bool,
    /// FIFO queue of (waiter id, permits wanted, waker).
    waiters: VecDeque<(u64, usize, Waker)>,
    next_id: u64,
}

/// The semaphore was closed while waiting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcquireError;

impl fmt::Display for AcquireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "semaphore closed")
    }
}

impl std::error::Error for AcquireError {}

/// An async counting semaphore.
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<State>>,
}

impl Semaphore {
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(State {
                permits,
                closed: false,
                waiters: VecDeque::new(),
                next_id: 0,
            })),
        }
    }

    pub fn available_permits(&self) -> usize {
        self.state.borrow().permits
    }

    /// Adds permits, waking eligible waiters in FIFO order. Permits are
    /// *transferred* to woken waiters immediately so a concurrent
    /// `try_acquire` cannot steal them before the waiter polls.
    pub fn add_permits(&self, n: usize) {
        let mut s = self.state.borrow_mut();
        s.permits += n;
        let mut to_wake = Vec::new();
        // Wake the longest FIFO prefix that can now be satisfied; holding to
        // strict FIFO avoids starving large acquisitions.
        while let Some((_, want, _)) = s.waiters.front() {
            if *want <= s.permits {
                s.permits -= *want;
                let (_, _, w) = s.waiters.pop_front().unwrap();
                to_wake.push(w);
            } else {
                break;
            }
        }
        drop(s);
        for w in to_wake {
            w.wake();
        }
    }

    /// Acquires `n` permits, waiting as needed. The returned permit releases
    /// on drop unless [`SemaphorePermit::forget`] is called.
    pub fn acquire(&self, n: usize) -> Acquire {
        Acquire {
            sem: self.clone(),
            want: n,
            id: None,
        }
    }

    /// Non-blocking acquire.
    pub fn try_acquire(&self, n: usize) -> Option<SemaphorePermit> {
        let mut s = self.state.borrow_mut();
        if s.closed {
            return None;
        }
        // Respect FIFO: don't let a try_acquire cut in front of waiters.
        if s.permits >= n && s.waiters.is_empty() {
            s.permits -= n;
            Some(SemaphorePermit {
                sem: self.clone(),
                count: n,
            })
        } else {
            None
        }
    }

    /// Closes the semaphore; all pending and future acquires fail.
    pub fn close(&self) {
        let mut s = self.state.borrow_mut();
        s.closed = true;
        let waiters: Vec<_> = s.waiters.drain(..).collect();
        drop(s);
        for (_, _, w) in waiters {
            w.wake();
        }
    }

    pub fn is_closed(&self) -> bool {
        self.state.borrow().closed
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    want: usize,
    id: Option<u64>,
}

impl Future for Acquire {
    type Output = Result<SemaphorePermit, AcquireError>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let want = self.want;
        let mut s = self.sem.state.borrow_mut();
        if s.closed {
            return Poll::Ready(Err(AcquireError));
        }
        match self.id {
            None => {
                if s.permits >= want && s.waiters.is_empty() {
                    s.permits -= want;
                    drop(s);
                    return Poll::Ready(Ok(SemaphorePermit {
                        sem: self.sem.clone(),
                        count: want,
                    }));
                }
                let id = s.next_id;
                s.next_id += 1;
                s.waiters.push_back((id, want, cx.waker().clone()));
                drop(s);
                self.id = Some(id);
                Poll::Pending
            }
            Some(id) => {
                if s.waiters.iter().any(|(wid, _, _)| *wid == id) {
                    for (wid, _, w) in s.waiters.iter_mut() {
                        if *wid == id {
                            *w = cx.waker().clone();
                        }
                    }
                    return Poll::Pending;
                }
                // We were popped by add_permits, which already transferred
                // our permits to us.
                drop(s);
                self.id = None;
                Poll::Ready(Ok(SemaphorePermit {
                    sem: self.sem.clone(),
                    count: want,
                }))
            }
        }
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut s = self.sem.state.borrow_mut();
            let was_waiting = s.waiters.iter().any(|(wid, _, _)| *wid == id);
            s.waiters.retain(|(wid, _, _)| *wid != id);
            if !was_waiting && !s.closed {
                // Permits were transferred to us by add_permits but we were
                // dropped before taking them: give them back.
                drop(s);
                self.sem.add_permits(self.want);
            }
        }
    }
}

/// Permits held from a [`Semaphore`]; released on drop.
pub struct SemaphorePermit {
    sem: Semaphore,
    count: usize,
}

impl SemaphorePermit {
    /// Number of permits held.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Leaks the permits (they are not returned on drop).
    pub fn forget(mut self) {
        self.count = 0;
    }
}

impl Drop for SemaphorePermit {
    fn drop(&mut self) {
        if self.count > 0 {
            self.sem.add_permits(self.count);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::cell::Cell;
    use std::time::Duration;

    #[test]
    fn acquire_release() {
        let rt = Runtime::new();
        rt.block_on(async {
            let sem = Semaphore::new(2);
            let p1 = sem.acquire(1).await.unwrap();
            let _p2 = sem.acquire(1).await.unwrap();
            assert_eq!(sem.available_permits(), 0);
            assert!(sem.try_acquire(1).is_none());
            drop(p1);
            assert_eq!(sem.available_permits(), 1);
        });
    }

    #[test]
    fn fifo_ordering() {
        let rt = Runtime::new();
        rt.block_on(async {
            let sem = Semaphore::new(0);
            let order = Rc::new(RefCell::new(Vec::new()));
            for i in 0..3 {
                let sem = sem.clone();
                let order = Rc::clone(&order);
                crate::spawn(async move {
                    let p = sem.acquire(1).await.unwrap();
                    order.borrow_mut().push(i);
                    p.forget();
                });
                // Stagger arrival so queue order is deterministic.
                crate::time::sleep(Duration::from_nanos(1)).await;
            }
            sem.add_permits(3);
            crate::time::sleep(Duration::from_nanos(1)).await;
            assert_eq!(*order.borrow(), vec![0, 1, 2]);
        });
    }

    #[test]
    fn large_acquire_not_starved() {
        let rt = Runtime::new();
        rt.block_on(async {
            let sem = Semaphore::new(0);
            let got2 = Rc::new(Cell::new(false));
            {
                let sem = sem.clone();
                let got2 = Rc::clone(&got2);
                crate::spawn(async move {
                    let _p = sem.acquire(2).await.unwrap();
                    got2.set(true);
                });
            }
            crate::time::sleep(Duration::from_nanos(1)).await;
            // One permit is not enough for the head waiter; a later
            // try_acquire(1) must not steal it (FIFO).
            sem.add_permits(1);
            assert!(sem.try_acquire(1).is_none());
            sem.add_permits(1);
            crate::time::sleep(Duration::from_nanos(1)).await;
            assert!(got2.get());
        });
    }

    #[test]
    fn close_fails_waiters() {
        let rt = Runtime::new();
        rt.block_on(async {
            let sem = Semaphore::new(0);
            let sem2 = sem.clone();
            let h = crate::spawn(async move { sem2.acquire(1).await });
            crate::time::sleep(Duration::from_nanos(1)).await;
            sem.close();
            assert_eq!(h.await.unwrap().err(), Some(AcquireError));
        });
    }
}
