//! A notification primitive, modelled on `tokio::sync::Notify`.
//!
//! Used where one task needs to tell another "state you care about changed":
//! e.g. the broker's API workers waking the push-replication module when a
//! record commits.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

#[derive(Default)]
struct State {
    /// One stored permit, as in tokio: a `notify_one` with no waiter is
    /// remembered and consumed by the next `notified().await`.
    permit: bool,
    waiters: VecDeque<(u64, Waker)>,
    next_id: u64,
    /// Ids granted a wakeup by `notify_waiters`.
    epoch: u64,
}

/// Notifies one or many waiting tasks.
#[derive(Clone, Default)]
pub struct Notify {
    state: Rc<RefCell<State>>,
}

impl Notify {
    pub fn new() -> Self {
        Self::default()
    }

    /// Wakes one waiter, or stores a permit if none is waiting.
    pub fn notify_one(&self) {
        let mut s = self.state.borrow_mut();
        if let Some((_, w)) = s.waiters.pop_front() {
            drop(s);
            w.wake();
        } else {
            s.permit = true;
        }
    }

    /// Wakes all current waiters (does not store a permit).
    pub fn notify_waiters(&self) {
        let mut s = self.state.borrow_mut();
        s.epoch += 1;
        // Take the deque out of the borrow so wakes can't re-enter the
        // RefCell, then hand it back afterwards: its capacity is retained,
        // so steady-state broadcasts never allocate.
        let mut waiters = std::mem::take(&mut s.waiters);
        drop(s);
        for (_, w) in waiters.drain(..) {
            w.wake();
        }
        let mut s = self.state.borrow_mut();
        if s.waiters.is_empty() {
            s.waiters = waiters;
        }
    }

    /// Waits for a notification.
    pub fn notified(&self) -> Notified {
        Notified {
            state: Rc::clone(&self.state),
            id: None,
            start_epoch: self.state.borrow().epoch,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    state: Rc<RefCell<State>>,
    id: Option<u64>,
    start_epoch: u64,
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.state.borrow_mut();
        // A broadcast since we started counts as our notification.
        if s.epoch != self.start_epoch {
            return Poll::Ready(());
        }
        if self.id.is_none() && s.permit {
            s.permit = false;
            return Poll::Ready(());
        }
        match self.id {
            Some(id) => {
                // Were we woken individually (removed from the queue)?
                if !s.waiters.iter().any(|(wid, _)| *wid == id) {
                    return Poll::Ready(());
                }
                // Refresh the stored waker.
                for (wid, w) in s.waiters.iter_mut() {
                    if *wid == id {
                        *w = cx.waker().clone();
                    }
                }
                Poll::Pending
            }
            None => {
                let id = s.next_id;
                s.next_id += 1;
                s.waiters.push_back((id, cx.waker().clone()));
                drop(s);
                self.id = Some(id);
                Poll::Pending
            }
        }
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut s = self.state.borrow_mut();
            s.waiters.retain(|(wid, _)| *wid != id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::cell::Cell;
    use std::time::Duration;

    #[test]
    fn permit_is_stored() {
        let rt = Runtime::new();
        rt.block_on(async {
            let n = Notify::new();
            n.notify_one();
            n.notified().await; // consumes stored permit, no deadlock
        });
    }

    #[test]
    fn notify_one_wakes_one() {
        let rt = Runtime::new();
        rt.block_on(async {
            let n = Notify::new();
            let count = Rc::new(Cell::new(0));
            for _ in 0..2 {
                let n = n.clone();
                let count = Rc::clone(&count);
                crate::spawn(async move {
                    n.notified().await;
                    count.set(count.get() + 1);
                });
            }
            crate::time::sleep(Duration::from_micros(1)).await;
            n.notify_one();
            crate::time::sleep(Duration::from_micros(1)).await;
            assert_eq!(count.get(), 1);
            n.notify_one();
            crate::time::sleep(Duration::from_micros(1)).await;
            assert_eq!(count.get(), 2);
        });
    }

    #[test]
    fn notify_waiters_wakes_all() {
        let rt = Runtime::new();
        rt.block_on(async {
            let n = Notify::new();
            let count = Rc::new(Cell::new(0));
            for _ in 0..3 {
                let n = n.clone();
                let count = Rc::clone(&count);
                crate::spawn(async move {
                    n.notified().await;
                    count.set(count.get() + 1);
                });
            }
            crate::time::sleep(Duration::from_micros(1)).await;
            n.notify_waiters();
            crate::time::sleep(Duration::from_micros(1)).await;
            assert_eq!(count.get(), 3);
        });
    }
}
