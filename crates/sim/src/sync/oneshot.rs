//! A one-shot channel: a single value passed from one producer to one
//! consumer.

use std::cell::RefCell;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct Shared<T> {
    value: Option<T>,
    closed: bool,
    waker: Option<Waker>,
}

/// Sending half; consumed by [`Sender::send`].
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Receiving half; a future resolving to `Result<T, RecvError>`.
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// The sender was dropped without sending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oneshot sender dropped without sending")
    }
}

impl std::error::Error for RecvError {}

/// Creates a connected sender/receiver pair.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        value: None,
        closed: false,
        waker: None,
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Sends the value. Fails (returning it) if the receiver was dropped.
    pub fn send(self, value: T) -> Result<(), T> {
        let mut s = self.shared.borrow_mut();
        if Rc::strong_count(&self.shared) == 1 {
            return Err(value);
        }
        s.value = Some(value);
        if let Some(w) = s.waker.take() {
            drop(s);
            w.wake();
        }
        Ok(())
    }

    /// True if the receiver half is gone.
    pub fn is_closed(&self) -> bool {
        Rc::strong_count(&self.shared) == 1
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.shared.borrow_mut();
        s.closed = true;
        if let Some(w) = s.waker.take() {
            drop(s);
            w.wake();
        }
    }
}

impl<T> Future for Receiver<T> {
    type Output = Result<T, RecvError>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.shared.borrow_mut();
        if let Some(v) = s.value.take() {
            return Poll::Ready(Ok(v));
        }
        if s.closed {
            return Poll::Ready(Err(RecvError));
        }
        s.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

impl<T> Receiver<T> {
    /// Non-blocking check: `Some(Ok(v))` if the value has arrived,
    /// `Some(Err(_))` if the sender is gone, `None` if still pending.
    pub fn try_recv(&mut self) -> Option<Result<T, RecvError>> {
        let mut s = self.shared.borrow_mut();
        if let Some(v) = s.value.take() {
            Some(Ok(v))
        } else if s.closed {
            Some(Err(RecvError))
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;

    #[test]
    fn send_then_recv() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, rx) = channel();
            tx.send(9u8).unwrap();
            assert_eq!(rx.await, Ok(9));
        });
    }

    #[test]
    fn recv_waits_for_send() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, rx) = channel();
            crate::spawn(async move {
                crate::time::sleep(std::time::Duration::from_micros(3)).await;
                tx.send("hi").unwrap();
            });
            assert_eq!(rx.await, Ok("hi"));
            assert_eq!(crate::now().as_nanos(), 3_000);
        });
    }

    #[test]
    fn dropped_sender_errors() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, rx) = channel::<u8>();
            drop(tx);
            assert_eq!(rx.await, Err(RecvError));
        });
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let (tx, rx) = channel::<u8>();
        drop(rx);
        assert!(tx.is_closed());
        assert_eq!(tx.send(1), Err(1));
    }
}
