//! An asynchronous FIFO mutex.
//!
//! Models Kafka's per-topic-partition write lock (paper §5.1, Fig 12: "each
//! TP file can be accessed by at most one API worker at a time due to
//! locking"). Because sim tasks only interleave at `.await` points a plain
//! `RefCell` would often do, but API workers hold the lock *across* modelled
//! CPU time (`sleep`s), so a real async lock is required.

use std::cell::{RefCell, UnsafeCell};
use std::collections::VecDeque;
use std::future::Future;
use std::ops::{Deref, DerefMut};
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct State {
    locked: bool,
    waiters: VecDeque<(u64, Waker)>,
    next_id: u64,
}

struct Inner<T: ?Sized> {
    state: RefCell<State>,
    value: UnsafeCell<T>,
}

/// An async mutual-exclusion lock with FIFO handoff.
pub struct Mutex<T: ?Sized> {
    inner: Rc<Inner<T>>,
}

impl<T> Clone for Mutex<T> {
    fn clone(&self) -> Self {
        Mutex {
            inner: Rc::clone(&self.inner),
        }
    }
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: Rc::new(Inner {
                state: RefCell::new(State {
                    locked: false,
                    waiters: VecDeque::new(),
                    next_id: 0,
                }),
                value: UnsafeCell::new(value),
            }),
        }
    }

    /// Locks the mutex, waiting in FIFO order.
    pub fn lock(&self) -> Lock<'_, T> {
        Lock {
            mutex: self,
            id: None,
        }
    }

    /// Attempts to lock without waiting.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        let mut s = self.inner.state.borrow_mut();
        if s.locked || !s.waiters.is_empty() {
            None
        } else {
            s.locked = true;
            Some(MutexGuard { mutex: self })
        }
    }

    pub fn is_locked(&self) -> bool {
        self.inner.state.borrow().locked
    }
}

/// Future returned by [`Mutex::lock`].
pub struct Lock<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
    id: Option<u64>,
}

impl<'a, T> Future for Lock<'a, T> {
    type Output = MutexGuard<'a, T>;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut s = self.mutex.inner.state.borrow_mut();
        match self.id {
            None => {
                if !s.locked && s.waiters.is_empty() {
                    s.locked = true;
                    drop(s);
                    return Poll::Ready(MutexGuard { mutex: self.mutex });
                }
                let id = s.next_id;
                s.next_id += 1;
                s.waiters.push_back((id, cx.waker().clone()));
                drop(s);
                self.id = Some(id);
                Poll::Pending
            }
            Some(id) => {
                if s.waiters.iter().any(|(wid, _)| *wid == id) {
                    for (wid, w) in s.waiters.iter_mut() {
                        if *wid == id {
                            *w = cx.waker().clone();
                        }
                    }
                    return Poll::Pending;
                }
                // Handed the lock by the previous guard's drop.
                debug_assert!(s.locked);
                drop(s);
                self.id = None;
                Poll::Ready(MutexGuard { mutex: self.mutex })
            }
        }
    }
}

impl<T: ?Sized> Drop for Lock<'_, T> {
    fn drop(&mut self) {
        if let Some(id) = self.id {
            let mut s = self.mutex.inner.state.borrow_mut();
            let was_waiting = s.waiters.iter().any(|(wid, _)| *wid == id);
            s.waiters.retain(|(wid, _)| *wid != id);
            if !was_waiting {
                // The lock was handed to us but we never took the guard;
                // pass it on.
                release(&mut s);
            }
        }
    }
}

fn release(s: &mut State) {
    if let Some((_, w)) = s.waiters.pop_front() {
        // Keep `locked == true`: ownership transfers directly to the woken
        // waiter, preserving FIFO even if another task tries to lock first.
        w.wake();
    } else {
        s.locked = false;
    }
}

/// RAII guard; the lock is released (or handed off) on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    mutex: &'a Mutex<T>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence implies exclusive logical ownership; the
        // runtime is single-threaded so no data race is possible.
        unsafe { &*self.mutex.inner.value.get() }
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.mutex.inner.value.get() }
    }
}

impl<T: ?Sized> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        let mut s = self.mutex.inner.state.borrow_mut();
        release(&mut s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::time::Duration;

    #[test]
    fn exclusive_access() {
        let rt = Runtime::new();
        rt.block_on(async {
            let m = Mutex::new(0u32);
            let mut handles = Vec::new();
            for _ in 0..4 {
                let m = m.clone();
                handles.push(crate::spawn(async move {
                    let mut g = m.lock().await;
                    let v = *g;
                    // Hold across a sleep: critical sections serialise.
                    crate::time::sleep(Duration::from_micros(1)).await;
                    *g = v + 1;
                }));
            }
            for h in handles {
                h.await.unwrap();
            }
            assert_eq!(*m.lock().await, 4);
            // 4 serialised 1us critical sections.
            assert_eq!(crate::now().as_nanos(), 4_000);
        });
    }

    #[test]
    fn try_lock_contends() {
        let rt = Runtime::new();
        rt.block_on(async {
            let m = Mutex::new(());
            let g = m.try_lock().unwrap();
            assert!(m.try_lock().is_none());
            drop(g);
            assert!(m.try_lock().is_some());
        });
    }

    #[test]
    fn fifo_handoff() {
        let rt = Runtime::new();
        rt.block_on(async {
            let m = Mutex::new(Vec::new());
            let g = m.lock().await;
            for i in 0..3 {
                let m = m.clone();
                crate::spawn(async move {
                    m.lock().await.push(i);
                });
                crate::time::yield_now().await;
            }
            drop(g);
            crate::time::sleep(Duration::from_nanos(1)).await;
            assert_eq!(*m.lock().await, vec![0, 1, 2]);
        });
    }
}
