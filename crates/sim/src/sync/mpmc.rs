//! A bounded multi-producer multi-consumer FIFO queue.
//!
//! Models Kafka's shared request queue (paper Fig 2 ➊➋➌): network
//! processors and RDMA pollers enqueue, the API-worker pool dequeues.
//! Fairness comes from the FIFO semaphores.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::sync::semaphore::Semaphore;

struct Shared<T> {
    queue: RefCell<VecDeque<T>>,
    /// Counts queued items (consumers acquire).
    items: Semaphore,
    /// Counts free capacity (producers acquire).
    space: Semaphore,
    closed: std::cell::Cell<bool>,
}

/// A bounded MPMC queue handle; clone freely.
pub struct WorkQueue<T> {
    shared: Rc<Shared<T>>,
}

impl<T> Clone for WorkQueue<T> {
    fn clone(&self) -> Self {
        WorkQueue {
            shared: Rc::clone(&self.shared),
        }
    }
}

impl<T> WorkQueue<T> {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0);
        WorkQueue {
            shared: Rc::new(Shared {
                queue: RefCell::new(VecDeque::new()),
                items: Semaphore::new(0),
                space: Semaphore::new(capacity),
                closed: std::cell::Cell::new(false),
            }),
        }
    }

    /// Enqueues, waiting for space. Returns `Err(item)` if closed.
    pub async fn send(&self, item: T) -> Result<(), T> {
        if self.shared.closed.get() {
            return Err(item);
        }
        match self.shared.space.acquire(1).await {
            Ok(permit) => {
                permit.forget();
                self.shared.queue.borrow_mut().push_back(item);
                self.shared.items.add_permits(1);
                Ok(())
            }
            Err(_) => Err(item),
        }
    }

    /// Dequeues, waiting for an item. `None` when closed and drained.
    pub async fn recv(&self) -> Option<T> {
        match self.shared.items.acquire(1).await {
            Ok(permit) => {
                permit.forget();
                let item = self.shared.queue.borrow_mut().pop_front();
                debug_assert!(item.is_some());
                self.shared.space.add_permits(1);
                item
            }
            Err(_) => self.try_recv(),
        }
    }

    /// Non-blocking dequeue.
    pub fn try_recv(&self) -> Option<T> {
        self.shared.items.try_acquire(1).map(|permit| {
            permit.forget();
            let item = self
                .shared
                .queue
                .borrow_mut()
                .pop_front()
                .expect("item permit implies queued item");
            self.shared.space.add_permits(1);
            item
        })
    }

    pub fn len(&self) -> usize {
        self.shared.queue.borrow().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Closes the queue: senders fail, receivers drain what remains.
    pub fn close(&self) {
        self.shared.closed.set(true);
        self.shared.items.close();
        self.shared.space.close();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::time::Duration;

    #[test]
    fn multiple_consumers_share_work() {
        let rt = Runtime::new();
        rt.block_on(async {
            let q: WorkQueue<u32> = WorkQueue::new(64);
            let done = Rc::new(RefCell::new(Vec::new()));
            for w in 0..3 {
                let q = q.clone();
                let done = Rc::clone(&done);
                crate::spawn(async move {
                    while let Some(item) = q.recv().await {
                        // Each "worker" takes 1us per item.
                        crate::time::sleep(Duration::from_micros(1)).await;
                        done.borrow_mut().push((w, item));
                    }
                });
            }
            for i in 0..9 {
                q.send(i).await.unwrap();
            }
            crate::time::sleep(Duration::from_micros(10)).await;
            q.close();
            let done = done.borrow();
            assert_eq!(done.len(), 9);
            // 9 items over 3 workers at 1us each = 3us wall time: parallel.
            let workers: std::collections::HashSet<_> = done.iter().map(|(w, _)| *w).collect();
            assert_eq!(workers.len(), 3);
            // FIFO overall: items processed in order within interleave.
            let mut items: Vec<_> = done.iter().map(|(_, i)| *i).collect();
            items.sort_unstable();
            assert_eq!(items, (0..9).collect::<Vec<_>>());
        });
    }

    #[test]
    fn bounded_blocks_producer() {
        let rt = Runtime::new();
        rt.block_on(async {
            let q: WorkQueue<u32> = WorkQueue::new(2);
            q.send(1).await.unwrap();
            q.send(2).await.unwrap();
            let q2 = q.clone();
            crate::spawn(async move {
                crate::time::sleep(Duration::from_micros(5)).await;
                assert_eq!(q2.recv().await, Some(1));
            });
            let t0 = crate::now();
            q.send(3).await.unwrap(); // must wait for the recv at t+5us
            assert_eq!((crate::now() - t0).as_nanos(), 5_000);
        });
    }

    #[test]
    fn close_wakes_receivers() {
        let rt = Runtime::new();
        rt.block_on(async {
            let q: WorkQueue<u32> = WorkQueue::new(2);
            let q2 = q.clone();
            let h = crate::spawn(async move { q2.recv().await });
            crate::time::sleep(Duration::from_micros(1)).await;
            q.close();
            assert_eq!(h.await.unwrap(), None);
            assert!(q.send(9).await.is_err());
        });
    }
}
