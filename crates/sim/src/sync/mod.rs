//! Asynchronous synchronisation primitives for the single-threaded runtime.
//!
//! All primitives here are `!Send`: tasks on the sim runtime live on one
//! thread and interleave only at `.await` points, so interior mutability via
//! `RefCell` is sound and cheap. The APIs mirror tokio's where practical.

pub mod mpmc;
pub mod mpsc;
pub mod mutex;
pub mod notify;
pub mod oneshot;
pub mod semaphore;
pub mod watch;

pub use mutex::{Mutex, MutexGuard};
pub use notify::Notify;
pub use semaphore::{AcquireError, Semaphore, SemaphorePermit};
