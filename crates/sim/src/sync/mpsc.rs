//! Multi-producer single-consumer channels (bounded and unbounded).
//!
//! The broker's shared request queue (paper Fig 2 ➊➋➌) is a bounded mpsc;
//! most control-plane plumbing uses unbounded channels.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// The receiver was dropped; contains the rejected value.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "channel closed")
    }
}

/// Error for [`Sender::try_send`].
#[derive(Debug, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// Bounded channel at capacity.
    Full(T),
    /// Receiver dropped.
    Closed(T),
}

struct Shared<T> {
    queue: VecDeque<T>,
    capacity: Option<usize>,
    senders: usize,
    receiver_alive: bool,
    recv_waker: Option<Waker>,
    send_wakers: VecDeque<Waker>,
}

impl<T> Shared<T> {
    fn wake_recv(&mut self) {
        if let Some(w) = self.recv_waker.take() {
            w.wake();
        }
    }

    fn wake_one_sender(&mut self) {
        if let Some(w) = self.send_wakers.pop_front() {
            w.wake();
        }
    }
}

/// Sending half; cloneable.
pub struct Sender<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Receiving half.
pub struct Receiver<T> {
    shared: Rc<RefCell<Shared<T>>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel with the given capacity (must be > 0).
pub fn bounded<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "mpsc capacity must be positive");
    with_capacity(Some(capacity))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Rc::new(RefCell::new(Shared {
        queue: VecDeque::new(),
        capacity,
        senders: 1,
        receiver_alive: true,
        recv_waker: None,
        send_wakers: VecDeque::new(),
    }));
    (
        Sender {
            shared: Rc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.borrow_mut().senders += 1;
        Sender {
            shared: Rc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut s = self.shared.borrow_mut();
        s.senders -= 1;
        if s.senders == 0 {
            s.wake_recv();
        }
    }
}

impl<T> Sender<T> {
    /// Sends, waiting (in virtual time) for space on a bounded channel.
    pub async fn send(&self, mut value: T) -> Result<(), SendError<T>> {
        loop {
            match self.try_send(value) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Closed(v)) => return Err(SendError(v)),
                Err(TrySendError::Full(v)) => {
                    value = v;
                    SendReady {
                        shared: &self.shared,
                    }
                    .await;
                }
            }
        }
    }

    /// Non-blocking send.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let mut s = self.shared.borrow_mut();
        if !s.receiver_alive {
            return Err(TrySendError::Closed(value));
        }
        if let Some(cap) = s.capacity {
            if s.queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        s.queue.push_back(value);
        s.wake_recv();
        Ok(())
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.shared.borrow().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the receiver is gone.
    pub fn is_closed(&self) -> bool {
        !self.shared.borrow().receiver_alive
    }
}

/// Future that resolves when a bounded channel may have space.
struct SendReady<'a, T> {
    shared: &'a Rc<RefCell<Shared<T>>>,
}

impl<T> Future for SendReady<'_, T> {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut s = self.shared.borrow_mut();
        if !s.receiver_alive {
            return Poll::Ready(());
        }
        match s.capacity {
            Some(cap) if s.queue.len() >= cap => {
                s.send_wakers.push_back(cx.waker().clone());
                Poll::Pending
            }
            _ => Poll::Ready(()),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut s = self.shared.borrow_mut();
        s.receiver_alive = false;
        // Unblock all pending senders so they observe closure.
        while let Some(w) = s.send_wakers.pop_front() {
            w.wake();
        }
    }
}

impl<T> Receiver<T> {
    /// Receives the next value, or `None` once all senders are gone and the
    /// queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        let mut s = self.shared.borrow_mut();
        let v = s.queue.pop_front();
        if v.is_some() {
            s.wake_one_sender();
        }
        v
    }

    pub fn len(&self) -> usize {
        self.shared.borrow().queue.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut s = self.receiver.shared.borrow_mut();
        if let Some(v) = s.queue.pop_front() {
            s.wake_one_sender();
            return Poll::Ready(Some(v));
        }
        if s.senders == 0 {
            return Poll::Ready(None);
        }
        s.recv_waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::time::Duration;

    #[test]
    fn unbounded_fifo() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, mut rx) = unbounded();
            for i in 0..5 {
                tx.send(i).await.unwrap();
            }
            for i in 0..5 {
                assert_eq!(rx.recv().await, Some(i));
            }
        });
    }

    #[test]
    fn recv_none_after_senders_drop() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, mut rx) = unbounded::<u8>();
            tx.send(1).await.unwrap();
            drop(tx);
            assert_eq!(rx.recv().await, Some(1));
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn bounded_backpressure() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, mut rx) = bounded::<u32>(2);
            tx.send(1).await.unwrap();
            tx.send(2).await.unwrap();
            assert_eq!(tx.try_send(3), Err(TrySendError::Full(3)));

            // A consumer draining after 5us unblocks the async send.
            crate::spawn(async move {
                crate::time::sleep(Duration::from_micros(5)).await;
                assert_eq!(rx.recv().await, Some(1));
                assert_eq!(rx.recv().await, Some(2));
                assert_eq!(rx.recv().await, Some(3));
            });
            tx.send(3).await.unwrap();
            assert_eq!(crate::now().as_nanos(), 5_000);
        });
    }

    #[test]
    fn multi_producer_order_is_arrival_order() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, mut rx) = unbounded();
            for i in 0..4u32 {
                let tx = tx.clone();
                crate::spawn(async move {
                    crate::time::sleep(Duration::from_micros(u64::from(4 - i))).await;
                    tx.send(i).await.unwrap();
                });
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            assert_eq!(got, vec![3, 2, 1, 0]);
        });
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let rt = Runtime::new();
        rt.block_on(async {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.is_closed());
            assert!(tx.send(1).await.is_err());
        });
    }
}
