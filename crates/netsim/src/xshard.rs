//! Cross-shard delivery routing for sharded parallel simulation.
//!
//! A [`Fabric`](crate::Fabric) is single-threaded by construction (all state
//! is `Rc`/`RefCell`), so a sharded run gives each worker shard its own
//! fabric and routes traffic *between* fabrics through the mailbox layer of
//! [`sim::shard`]. This module is that routing layer: an [`XShardNet`] per
//! shard binds numbered ingress endpoints (a node's NIC, a bridge port, a
//! control tap) to local delivery closures, and ships [`XPacket`]s to remote
//! endpoints stamped with a virtual arrival time derived from the net
//! profile — at least the propagation delay, which is exactly the
//! conservative lookahead the shard scheduler synchronizes on
//! ([`NetProfile::min_link_latency`](crate::profile::NetProfile::min_link_latency)).
//!
//! Delivery order is canonical: the shard layer sorts same-instant arrivals
//! by `(deliver_at, stream, seq)`, and this module uses the sender-chosen
//! `stream` (one per simulated link) with the shard layer's per-stream
//! sequence numbers — so the delivery schedule is a function of the
//! simulated workload only, not of shard placement or wall-clock races.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use sim::shard::{ShardCtx, XSender};

use crate::profile::NetProfile;

/// A packet crossing shard boundaries: destination endpoint plus payload
/// bytes. `stream` identifies the simulated link for canonical ordering.
pub struct XPacket {
    /// Destination ingress endpoint on the target shard.
    pub endpoint: u64,
    /// Simulated-link id used as the canonical ordering stream.
    pub stream: u64,
    /// Payload bytes.
    pub bytes: Vec<u8>,
}

type Ingress = Box<dyn FnMut(XPacket)>;

/// Per-shard cross-fabric router. Cheap to clone via `Rc`.
pub struct XShardNet {
    tx: XSender<XPacket>,
    shard: usize,
    /// Flight-time model for cross-shard hops.
    net: NetProfile,
    endpoints: RefCell<HashMap<u64, Ingress>>,
}

impl XShardNet {
    /// Builds the router for `ctx`'s shard and installs it as the shard's
    /// mailbox handler. Call once per shard, before [`ShardCtx::run`].
    pub fn install(ctx: &ShardCtx<XPacket>, net: &NetProfile) -> Rc<XShardNet> {
        let router = Rc::new(XShardNet {
            tx: ctx.sender(),
            shard: ctx.shard(),
            net: net.clone(),
            endpoints: RefCell::new(HashMap::new()),
        });
        let r = Rc::clone(&router);
        ctx.set_handler(move |pkt: XPacket| r.deliver(pkt));
        router
    }

    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Registers the ingress closure for `endpoint`; packets addressed to
    /// it run inside this shard's runtime at their stamped arrival time.
    /// Rebinding an endpoint replaces the previous closure.
    pub fn bind(&self, endpoint: u64, ingress: impl FnMut(XPacket) + 'static) {
        self.endpoints
            .borrow_mut()
            .insert(endpoint, Box::new(ingress));
    }

    /// Removes an endpoint binding (e.g. a crashed node); in-flight packets
    /// to it are dropped on arrival, like a NIC with no listener.
    pub fn unbind(&self, endpoint: u64) {
        self.endpoints.borrow_mut().remove(&endpoint);
    }

    /// Flight time of `bytes` across a cross-shard hop: wire serialization
    /// at link goodput plus propagation. Never less than the propagation
    /// delay, the shard scheduler's lookahead floor.
    pub fn flight_time(&self, bytes: u64) -> Duration {
        self.net.propagation + self.net.wire_time(bytes)
    }

    /// Ships `bytes` to `endpoint` on `dst_shard` over simulated link
    /// `stream`, arriving after [`XShardNet::flight_time`]. Sending to the
    /// local shard is legal and takes the same mailbox path (placement must
    /// not change delivery semantics).
    pub fn send(&self, dst_shard: usize, endpoint: u64, stream: u64, bytes: Vec<u8>) {
        let at = sim::now() + self.flight_time(bytes.len() as u64);
        self.tx.send(
            dst_shard,
            at,
            stream,
            XPacket {
                endpoint,
                stream,
                bytes,
            },
        );
    }

    fn deliver(&self, pkt: XPacket) {
        // Take the closure out of the map during the call so an ingress
        // that itself binds/unbinds endpoints doesn't deadlock the RefCell.
        let ingress = self.endpoints.borrow_mut().remove(&pkt.endpoint);
        let Some(mut ingress) = ingress else {
            return; // unbound endpoint: packet dropped
        };
        let endpoint = pkt.endpoint;
        ingress(pkt);
        self.endpoints
            .borrow_mut()
            .entry(endpoint)
            .or_insert(ingress);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::shard::{run_sharded, ShardOptions};
    use std::sync::{Arc, Mutex};

    fn net() -> NetProfile {
        crate::profile::Profile::testbed().net
    }

    #[test]
    fn packets_route_between_shards_at_flight_time() {
        let seen: Arc<Mutex<Vec<(u64, u64, usize)>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let profile = net();
        let opts = ShardOptions::new(2, profile.min_link_latency(), 1);
        run_sharded::<XPacket, _, _>(&opts, move |ctx| {
            let shard = ctx.shard();
            let router = XShardNet::install(ctx, &net());
            let seen = Arc::clone(&seen2);
            router.bind(7, move |pkt| {
                seen.lock()
                    .unwrap()
                    .push((sim::now().as_nanos(), pkt.stream, pkt.bytes.len()));
            });
            let r2 = Rc::clone(&router);
            ctx.run(async move {
                if shard == 0 {
                    r2.send(1, 7, 42, vec![0u8; 1000]);
                } else {
                    sim::time::sleep(Duration::from_micros(50)).await;
                }
            })
        });
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 1);
        let (at, stream, len) = seen[0];
        assert_eq!((stream, len), (42, 1000));
        // Arrival = propagation (650ns) + wire time of 1030 bytes at 6 GiB/s.
        let expect = net().propagation + net().wire_time(1000);
        assert_eq!(at, expect.as_nanos() as u64);
    }

    #[test]
    fn local_shard_sends_take_the_mailbox_path_too() {
        let seen: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));
        let seen2 = Arc::clone(&seen);
        let profile = net();
        let opts = ShardOptions::new(1, profile.min_link_latency(), 2);
        run_sharded::<XPacket, _, _>(&opts, move |ctx| {
            let router = XShardNet::install(ctx, &net());
            let seen = Arc::clone(&seen2);
            router.bind(1, move |_| seen.lock().unwrap().push(sim::now().as_nanos()));
            let r2 = Rc::clone(&router);
            ctx.run(async move {
                r2.send(0, 1, 9, vec![1, 2, 3]);
                sim::time::sleep(Duration::from_micros(20)).await;
            })
        });
        assert_eq!(seen.lock().unwrap().len(), 1);
    }

    #[test]
    fn unbound_endpoint_drops_packet() {
        let profile = net();
        let opts = ShardOptions::new(2, profile.min_link_latency(), 3);
        let run = run_sharded::<XPacket, _, _>(&opts, move |ctx| {
            let shard = ctx.shard();
            let router = XShardNet::install(ctx, &net());
            let r2 = Rc::clone(&router);
            ctx.run(async move {
                if shard == 0 {
                    r2.send(1, 99, 0, vec![0]);
                }
                sim::time::sleep(Duration::from_micros(10)).await;
            })
        });
        // No panic, message counted as received by the shard layer.
        assert_eq!(run.stats[1].received, 1);
    }
}
