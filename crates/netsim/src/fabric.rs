//! The fabric: a registry of nodes ("machines") joined by a switch.
//!
//! Each node has an egress and an ingress NIC port ([`Link`]). A transfer
//! from A to B serialises on A's egress, crosses the switch (propagation
//! delay), then serialises on B's ingress. This reproduces the two real
//! contention points of an RDMA cluster — sender injection and receiver
//! delivery — without simulating the switch core (which is never the
//! bottleneck in the paper's experiments).

use std::any::{Any, TypeId};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::time::Duration;

use sim::SimTime;

use crate::link::Link;
use crate::profile::Profile;

/// Identifies a node on a fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

pub(crate) struct Node {
    pub(crate) name: String,
    pub(crate) egress: Link,
    pub(crate) ingress: Link,
    /// Per-8-byte-address serialisation point for RDMA atomics (paper
    /// §4.2.2: single-counter atomics cap at 2.68 Mops/s).
    pub(crate) atomic_busy: RefCell<HashMap<u64, u64>>,
}

pub(crate) struct FabricInner {
    pub(crate) profile: Rc<Profile>,
    pub(crate) nodes: RefCell<Vec<Rc<Node>>>,
    pub(crate) tcp_listeners: RefCell<HashMap<(NodeId, u16), crate::tcp::ListenerSlot>>,
    /// Directed node pairs whose TCP traffic is blackholed (network
    /// partition fault injection).
    pub(crate) blocked: RefCell<HashSet<(NodeId, NodeId)>>,
    pub(crate) next_auto_port: std::cell::Cell<u16>,
    /// Typed extension slots: higher layers (e.g. the RDMA device registry in
    /// the `rnic` crate) attach their fabric-global state here.
    pub(crate) extensions: RefCell<HashMap<TypeId, Rc<dyn Any>>>,
    // Telemetry for the per-address atomic rate limit (§4.2.2).
    pub(crate) atomic_ops: kdtelem::Counter,
    pub(crate) atomic_stalls: kdtelem::Counter,
    pub(crate) atomic_stall_ns: kdtelem::Histogram,
    /// Registry captured at construction; per-link trace events (enqueue /
    /// deliver with queueing attribution) for transfers carrying an ambient
    /// [`kdtelem::TraceCtx`] go here.
    pub(crate) telem: kdtelem::Registry,
    /// Pooled MSS-sized packet buffers for TCP segmentation: steady-state
    /// traffic recycles chunks instead of allocating per packet.
    pub(crate) pkt_pool: kdbuf::Pool,
}

/// A handle to the whole simulated network. Cheap to clone.
#[derive(Clone)]
pub struct Fabric {
    pub(crate) inner: Rc<FabricInner>,
}

impl Fabric {
    pub fn new(profile: Profile) -> Self {
        let telem = kdtelem::current();
        let pkt_pool = kdbuf::Pool::new(profile.net.tcp_mss as usize);
        Fabric {
            inner: Rc::new(FabricInner {
                profile: Rc::new(profile),
                nodes: RefCell::new(Vec::new()),
                tcp_listeners: RefCell::new(HashMap::new()),
                blocked: RefCell::new(HashSet::new()),
                next_auto_port: std::cell::Cell::new(40000),
                extensions: RefCell::new(HashMap::new()),
                atomic_ops: telem.counter("netsim", "atomic.ops"),
                atomic_stalls: telem.counter("netsim", "atomic.stalls"),
                atomic_stall_ns: telem.histogram("netsim", "atomic.stall_ns"),
                telem,
                pkt_pool,
            }),
        }
    }

    pub fn profile(&self) -> Rc<Profile> {
        Rc::clone(&self.inner.profile)
    }

    /// The shared MSS-sized packet buffer pool used by TCP segmentation.
    pub fn packet_pool(&self) -> &kdbuf::Pool {
        &self.inner.pkt_pool
    }

    /// Adds a machine to the fabric.
    pub fn add_node(&self, name: &str) -> NodeHandle {
        let bw = self.inner.profile.net.link_bandwidth;
        let node = Rc::new(Node {
            name: name.to_string(),
            egress: Link::new(bw),
            ingress: Link::new(bw),
            atomic_busy: RefCell::new(HashMap::new()),
        });
        let mut nodes = self.inner.nodes.borrow_mut();
        let id = NodeId(nodes.len() as u32);
        nodes.push(node);
        NodeHandle {
            id,
            fabric: self.clone(),
        }
    }

    pub(crate) fn node(&self, id: NodeId) -> Rc<Node> {
        Rc::clone(&self.inner.nodes.borrow()[id.0 as usize])
    }

    pub fn node_name(&self, id: NodeId) -> String {
        self.inner.nodes.borrow()[id.0 as usize].name.clone()
    }

    pub fn node_count(&self) -> usize {
        self.inner.nodes.borrow().len()
    }

    /// Records the enqueue/deliver trace-event pair for one port traversal,
    /// attributing time spent queued behind earlier reservations.
    fn trace_hop(
        &self,
        ctx: kdtelem::TraceCtx,
        node: NodeId,
        egress: bool,
        bytes: u64,
        requested: SimTime,
        res: &crate::link::Reservation,
    ) {
        let queue_ns = res.start.as_nanos().saturating_sub(requested.as_nanos());
        self.inner.telem.record_trace_event(
            ctx,
            res.start.as_nanos(),
            kdtelem::EventKind::PacketEnqueued {
                node: node.0,
                egress,
                bytes,
                queue_ns,
            },
        );
        self.inner.telem.record_trace_event(
            ctx,
            res.end.as_nanos(),
            kdtelem::EventKind::PacketDelivered {
                node: node.0,
                egress,
                bytes,
            },
        );
    }

    /// Reserves the full src→dst path for one message at verbs goodput and
    /// returns its arrival time at dst. `min_occupancy` models the per-op
    /// initiation gap (message-rate limit) on both ports.
    pub fn reserve_path(
        &self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        min_occupancy: Duration,
    ) -> SimTime {
        self.reserve_path_with(now, src, dst, bytes, min_occupancy, min_occupancy)
    }

    /// As [`reserve_path`](Self::reserve_path) but with independent per-op
    /// occupancy on the two ports: `src_gap` on the sender's egress,
    /// `dst_gap` on the receiver's ingress. This is how per-endpoint NIC
    /// state costs (e.g. the QP-context cache miss penalty past the
    /// connection-count knee) are charged where they arise — a slow
    /// receiver NIC throttles its ingress without slowing the sender's
    /// egress injection.
    pub fn reserve_path_with(
        &self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        src_gap: Duration,
        dst_gap: Duration,
    ) -> SimTime {
        let p = &self.inner.profile.net;
        let total = bytes + p.header_bytes;
        let src_node = self.node(src);
        let dst_node = self.node(dst);
        let trace = kdtelem::current_ctx();
        let egress = src_node.egress.reserve(now, total, src_gap);
        if let Some(ctx) = trace {
            self.trace_hop(ctx, src, true, total, now, &egress);
        }
        if src == dst {
            // Loopback (e.g. a broker issuing an atomic to itself, §4.2.2)
            // still pays the NIC round trip but not ingress contention
            // against remote traffic on a second port.
            return egress.end + p.propagation;
        }
        let at_switch = egress.end + p.propagation;
        let ingress = dst_node.ingress.reserve(at_switch, total, dst_gap);
        if let Some(ctx) = trace {
            self.trace_hop(ctx, dst, false, total, at_switch, &ingress);
        }
        ingress.end
    }

    /// As [`reserve_path`](Self::reserve_path) but at TCP goodput.
    pub fn reserve_tcp_path(
        &self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
    ) -> SimTime {
        let p = &self.inner.profile.net;
        let bw = p.link_bandwidth * p.tcp_bandwidth_factor;
        let total = bytes + p.header_bytes;
        let src_node = self.node(src);
        let dst_node = self.node(dst);
        let trace = kdtelem::current_ctx();
        let egress = src_node.egress.reserve_at(now, total, bw, Duration::ZERO);
        if let Some(ctx) = trace {
            self.trace_hop(ctx, src, true, total, now, &egress);
        }
        if src == dst {
            return egress.end + p.propagation;
        }
        let at_switch = egress.end + p.propagation;
        let ingress = dst_node
            .ingress
            .reserve_at(at_switch, total, bw, Duration::ZERO);
        if let Some(ctx) = trace {
            self.trace_hop(ctx, dst, false, total, at_switch, &ingress);
        }
        ingress.end
    }

    /// Serialises an atomic on the target address: returns the execution
    /// time of an atomic arriving at `arrival`, enforcing the per-address
    /// rate limit.
    pub fn reserve_atomic(&self, node: NodeId, addr: u64, arrival: SimTime) -> SimTime {
        let p = &self.inner.profile.net;
        let node = self.node(node);
        let mut busy = node.atomic_busy.borrow_mut();
        let slot = busy.entry(addr & !7).or_insert(0);
        let start = arrival.as_nanos().max(*slot);
        let exec_done = start + p.atomic_exec.as_nanos() as u64;
        *slot = start + p.atomic_same_addr_gap.as_nanos() as u64;
        self.inner.atomic_ops.inc();
        if start > arrival.as_nanos() {
            self.inner.atomic_stalls.inc();
            self.inner.atomic_stall_ns.record(start - arrival.as_nanos());
        }
        SimTime::from_nanos(exec_done)
    }

    /// Telemetry: bytes carried by a node's ports `(egress, ingress)`.
    pub fn node_bytes(&self, id: NodeId) -> (u64, u64) {
        let n = self.node(id);
        (n.egress.bytes_carried(), n.ingress.bytes_carried())
    }

    // -----------------------------------------------------------------
    // Fault injection (consulted by the TCP path only; the verbs path
    // models a lossless fabric and is failed at the QP level instead).
    // -----------------------------------------------------------------

    /// Takes both of a node's ports down; its TCP traffic fails until
    /// [`set_node_up`](Self::set_node_up).
    pub fn set_node_down(&self, id: NodeId) {
        let n = self.node(id);
        n.egress.set_down();
        n.ingress.set_down();
    }

    /// Brings a node's ports back up.
    pub fn set_node_up(&self, id: NodeId) {
        let n = self.node(id);
        n.egress.set_up();
        n.ingress.set_up();
    }

    /// Blackholes TCP traffic between `a` and `b` in both directions.
    pub fn partition_pair(&self, a: NodeId, b: NodeId) {
        let mut blocked = self.inner.blocked.borrow_mut();
        blocked.insert((a, b));
        blocked.insert((b, a));
    }

    /// Heals a [`partition_pair`](Self::partition_pair).
    pub fn heal_pair(&self, a: NodeId, b: NodeId) {
        let mut blocked = self.inner.blocked.borrow_mut();
        blocked.remove(&(a, b));
        blocked.remove(&(b, a));
    }

    /// Heals every injected partition.
    pub fn heal_all(&self) {
        self.inner.blocked.borrow_mut().clear();
    }

    /// True when src→dst TCP traffic cannot flow: the pair is partitioned,
    /// or an endpoint port on the path is administratively down.
    pub fn path_blocked(&self, src: NodeId, dst: NodeId) -> bool {
        if self.inner.blocked.borrow().contains(&(src, dst)) {
            return true;
        }
        let nodes = self.inner.nodes.borrow();
        nodes[src.0 as usize].egress.is_down() || nodes[dst.0 as usize].ingress.is_down()
    }

    /// Arms a deterministic drop probability on `src`'s egress port (each
    /// drop costs the TCP path one retransmission timeout).
    pub fn set_tcp_drop(&self, src: NodeId, drop_p: f64, seed: u64) {
        self.node(src).egress.set_drop(drop_p, seed);
    }

    /// Arms a fixed extra delay on `src`'s egress port.
    pub fn set_tcp_delay(&self, src: NodeId, delay: Duration) {
        self.node(src).egress.set_delay(delay);
    }

    /// Clears drop/delay faults on both of a node's ports.
    pub fn clear_link_faults(&self, id: NodeId) {
        let n = self.node(id);
        n.egress.clear_faults();
        n.ingress.clear_faults();
    }

    /// Returns the fabric-global extension of type `T`, creating it with
    /// `init` on first access. Used by higher layers (e.g. the `rnic` crate's
    /// device registry) to share state across a fabric without netsim
    /// depending on them.
    pub fn extension<T: 'static>(&self, init: impl FnOnce() -> T) -> Rc<T> {
        let key = TypeId::of::<T>();
        if let Some(ext) = self.inner.extensions.borrow().get(&key) {
            return Rc::clone(ext).downcast::<T>().expect("extension type");
        }
        let ext: Rc<T> = Rc::new(init());
        self.inner
            .extensions
            .borrow_mut()
            .insert(key, Rc::clone(&ext) as Rc<dyn Any>);
        ext
    }

    pub(crate) fn alloc_port(&self) -> u16 {
        let p = self.inner.next_auto_port.get();
        self.inner.next_auto_port.set(p + 1);
        p
    }
}

/// A handle to one machine on the fabric. Cheap to clone.
#[derive(Clone)]
pub struct NodeHandle {
    pub id: NodeId,
    pub fabric: Fabric,
}

impl NodeHandle {
    pub fn name(&self) -> String {
        self.fabric.node_name(self.id)
    }

    pub fn profile(&self) -> Rc<Profile> {
        self.fabric.profile()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{Profile, GIB};

    #[test]
    fn reserve_path_adds_propagation() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::testbed());
            let a = f.add_node("a");
            let b = f.add_node("b");
            let arrival = f.reserve_path(sim::now(), a.id, b.id, 0, Duration::ZERO);
            // header bytes only: tiny wire time + 600ns prop
            assert!(arrival.as_nanos() >= 600 && arrival.as_nanos() < 1000);
        });
    }

    #[test]
    fn parallel_senders_share_receiver_ingress() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::testbed());
            let a = f.add_node("a");
            let b = f.add_node("b");
            let c = f.add_node("c");
            let sz = GIB / 8; // ~128 MiB each
            let t1 = f.reserve_path(sim::now(), a.id, c.id, sz, Duration::ZERO);
            let t2 = f.reserve_path(sim::now(), b.id, c.id, sz, Duration::ZERO);
            // Two senders into one ingress: second arrival roughly doubles.
            let one = 1e9 * sz as f64 / (6.0 * GIB as f64);
            assert!((t1.as_nanos() as f64) > one * 0.99);
            assert!((t2.as_nanos() as f64) > one * 1.9, "t2={t2:?}");
        });
    }

    #[test]
    fn atomics_to_same_address_serialise_at_paper_rate() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::testbed());
            let a = f.add_node("a");
            let now = sim::now();
            let e1 = f.reserve_atomic(a.id, 4096, now);
            let e2 = f.reserve_atomic(a.id, 4096, now);
            let e3 = f.reserve_atomic(a.id, 4100, now); // same 8-byte word
            let other = f.reserve_atomic(a.id, 8192, now); // different word
            assert_eq!(e2.as_nanos() - e1.as_nanos(), 373);
            assert_eq!(e3.as_nanos() - e2.as_nanos(), 373);
            assert_eq!(other, e1);
        });
    }

    #[test]
    fn loopback_allowed() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let f = Fabric::new(Profile::testbed());
            let a = f.add_node("a");
            let t = f.reserve_path(sim::now(), a.id, a.id, 64, Duration::ZERO);
            assert!(t.as_nanos() > 0);
        });
    }
}
