//! Network substrate for the KafkaDirect reproduction.
//!
//! Models the paper's testbed (§5, "Settings"): a cluster of machines joined
//! by a 56 Gbit/s InfiniBand fabric. Three layers:
//!
//! * [`profile`] — every calibrated cost constant, each cited to the paper
//!   section it comes from. Change the profile, change the testbed.
//! * [`fabric`] + [`link`] — nodes with ingress/egress NIC ports; byte-level
//!   FIFO serialisation, propagation delay, per-message overheads, and the
//!   per-address atomic rate limit (§4.2.2: 2.68 Mops/s).
//! * [`tcp`] — a socket-like byte-stream transport over the same links, with
//!   kernel-copy and syscall/wakeup costs. This is what "Kafka over IPoIB"
//!   uses; `rnic` (a separate crate) implements the RDMA verbs over the same
//!   fabric.
//!
//! Everything runs on the [`sim`] virtual-time runtime, so all "costs" are
//! deterministic virtual nanoseconds.

pub mod fabric;
pub mod link;
pub mod profile;
pub mod tcp;
pub mod xshard;

pub use fabric::{Fabric, NodeHandle, NodeId};
pub use link::Link;
pub use profile::NetProfile;
