//! Calibrated cost constants describing the paper's testbed.
//!
//! Every figure in the paper is a function of these numbers. Each constant
//! cites the paper section (or the measured value in the paper) it is
//! calibrated against. `Profile::testbed()` is the 12-node InfiniBand cluster
//! of §5 ("Settings"); `Profile::fast_test()` zeroes the model for pure logic
//! tests where virtual time is irrelevant.

use std::time::Duration;

pub const KIB: u64 = 1024;
pub const MIB: u64 = 1024 * KIB;
pub const GIB: u64 = 1024 * MIB;

/// Network-level constants (fabric, RNIC engine, TCP stack).
#[derive(Debug, Clone)]
pub struct NetProfile {
    /// Link goodput in bytes/second. §4.3.2: "the link bandwidth of
    /// 6 GiB/sec" on 56 Gbit/s ConnectX-4.
    pub link_bandwidth: f64,
    /// Wire packet (MTU) size in bytes. §4.3.2: "the packet size in our
    /// network is 2 KiB".
    pub packet_size: u64,
    /// One-way propagation + switch delay.
    pub propagation: Duration,
    /// Per-message wire header bytes (IB LRH/BTH/ICRC etc.); affects
    /// small-message goodput.
    pub header_bytes: u64,

    /// Initiator cost to ring the doorbell and fetch a WQE.
    pub rdma_post_overhead: Duration,
    /// Minimum spacing between ops on one NIC port — caps the verbs message
    /// rate at ~8.3 Mops/s, the empty-fetch rate the paper measures in §5.3.
    pub rdma_min_op_gap: Duration,
    /// Cost from CQE arrival to a polling thread observing it.
    pub rdma_completion_overhead: Duration,
    /// Marginal initiator cost per *linked* WR in a posted list beyond the
    /// head (`ibv_post_send` postlist: one doorbell, then the NIC walks the
    /// chained WQEs). The head WR pays the full `rdma_post_overhead`; WR
    /// `i > 0` in the list adds `i * doorbell_overhead` to its post time. A
    /// one-element list is therefore exactly a single post, whatever this
    /// constant is.
    pub doorbell_overhead: Duration,
    /// Marginal CPU cost per *additional* CQE taken in one batched
    /// `ibv_poll_cq` drain, beyond the first (which pays the poller's full
    /// per-poll charge). A batch of one is exactly a single poll, whatever
    /// this constant is.
    pub cqe_batch_marginal: Duration,
    /// Responder-side execution time of an 8-byte atomic (PCIe
    /// read-modify-write + fence; atomics are markedly slower than reads on
    /// real RNICs). Calibrated so a serialised FAA round trip costs ~2.5 µs
    /// more than an exclusive produce (§5.1: "The latency of an exclusive
    /// RDMA producer is 2.5 us lower than the shared TCP/RDMA producer").
    pub atomic_exec: Duration,
    /// Minimum spacing of atomics to the *same address*. §4.2.2: "the
    /// throughput of RDMA atomics ... cannot exceed 2.68 Mreq/sec for a
    /// single counter" → 1/2.68 MHz ≈ 373 ns.
    pub atomic_same_addr_gap: Duration,
    /// Responder DMA-fetch cost for serving an RDMA Read.
    pub read_response_overhead: Duration,
    /// NIC QP-context cache capacity, in resident QP contexts per device.
    /// Past this many connected (non-multiplexed) QPs, every op risks an
    /// on-NIC cache miss that fetches QP/WQE/CQ state over PCIe — the
    /// connection-scaling knee RDMAvisor §2 measures on real RNICs. `0`
    /// disables the model entirely (like `doorbell_overhead` in
    /// `fast_test`).
    pub nic_cache_qps: u64,
    /// Full-miss port-occupancy penalty per op once the context cache is
    /// overcommitted. Charged as extra per-op occupancy on the affected
    /// NIC's port, scaled by the miss rate `(resident - capacity) /
    /// resident`, so aggregate throughput — not just latency — collapses
    /// past the knee. Calibrated as ~3 PCIe round trips (QP context, WQE,
    /// CQ context at ~400 ns each).
    pub qp_cache_miss: Duration,

    /// One-way latency of the kernel TCP/IP (IPoIB) stack beyond the
    /// sender's syscall: softirq, IPoIB encapsulation, interrupt, socket
    /// delivery. Calibrated so the small-message TCP RTT is ~70–90 µs,
    /// consistent with Kafka's ≥200 µs fetch RTT (§5.3) once broker thread
    /// hops are added.
    pub tcp_stack_oneway: Duration,
    /// Sender-side send()/write() syscall cost, charged per chunk.
    pub tcp_syscall: Duration,
    /// TCP goodput efficiency over the 56 Gbit/s link (IPoIB reaches well
    /// under half of the verbs goodput).
    pub tcp_bandwidth_factor: f64,
    /// Kernel↔user copy bandwidth (the "driver copies all received messages
    /// from its receive buffers to Kafka's receive buffers" copy, §4.2.1).
    pub kernel_copy_bandwidth: f64,
    /// Socket buffer (flow-control window) per direction.
    pub socket_buffer: u64,
    /// Maximum bytes per simulated segment write.
    pub tcp_mss: u64,
    /// Three-way handshake + connection setup cost.
    pub tcp_connect: Duration,
}

/// CPU-side constants for brokers and clients (the "Java" costs of §5.1).
#[derive(Debug, Clone)]
pub struct CpuProfile {
    /// Waking a thread blocked on a poll/selector. §5.1 attributes part of
    /// the 88 µs produce overhead to "thread invocations due to blocking
    /// polling of the RNIC events, the network, and producer's API".
    pub wakeup: Duration,
    /// Forwarding a request between thread pools via the shared request
    /// queue. §5.1: "forwarding a request takes 11 µs".
    pub handoff: Duration,
    /// Network-processor-thread cost per TCP request/response (read, parse,
    /// serialize, write). Calibrated against §5.3: a broker saturates at
    /// ~53 K empty fetches/s with the default 3 network threads.
    pub net_request_cost: Duration,
    /// Fixed API-worker cost to process one produce request (offset
    /// assignment, log bookkeeping). Together with `crc_bandwidth`
    /// calibrated against Fig 13 (630 MiB/s per worker at 4 KiB) and §5.1's
    /// "14 µs ... including CRC32C".
    pub api_produce_base: Duration,
    /// Fixed API-worker cost to process one fetch request.
    pub api_fetch_base: Duration,
    /// CRC32C verification bandwidth (bytes/s).
    pub crc_bandwidth: f64,
    /// Bandwidth of Kafka's Java-heap copies (network receive buffer →
    /// file buffer, §4.2.1). Deliberately slow: the paper's Kafka tops out
    /// at 280 MiB/s for 32 KiB records (Fig 11).
    pub heap_copy_bandwidth: f64,
    /// Plain memcpy bandwidth for well-behaved copies (off-heap → native
    /// buffer in the RDMA consumer, §5.3).
    pub memcpy_bandwidth: f64,
    /// Producer-side defensive copy, fixed part. §5.1: "the producer API
    /// makes a copy of user data to prevent mutation of it".
    pub producer_copy_base: Duration,
    /// Extra client-side pipeline cost of the original Kafka (and OSU)
    /// producer/consumer path (record accumulator, sender thread, selector);
    /// absent from the leaner RDMA client path.
    pub tcp_client_extra: Duration,
    /// Leader-side cost to issue one push-replication RDMA write (JNI post
    /// path on the replication worker). Calibrated against Fig 17: without
    /// batching, a flood of 64 B records caps replication at ~3.8 MiB/s of
    /// 32 B produces.
    pub repl_post_cost: Duration,
}

/// Full testbed description.
#[derive(Debug, Clone)]
pub struct Profile {
    pub net: NetProfile,
    pub cpu: CpuProfile,
}

impl Profile {
    /// The paper's testbed (§5 "Settings"): 56 Gbit/s ConnectX-4 InfiniBand,
    /// 2×8-core Xeon E5-2630 v3, tmpfs-backed logs.
    pub fn testbed() -> Self {
        Profile {
            net: NetProfile {
                link_bandwidth: 6.0 * GIB as f64,
                packet_size: 2 * KIB,
                propagation: Duration::from_nanos(650),
                header_bytes: 30,
                rdma_post_overhead: Duration::from_nanos(200),
                rdma_min_op_gap: Duration::from_nanos(120),
                rdma_completion_overhead: Duration::from_nanos(500),
                doorbell_overhead: Duration::from_nanos(40),
                cqe_batch_marginal: Duration::from_nanos(100),
                atomic_exec: Duration::from_nanos(1200),
                atomic_same_addr_gap: Duration::from_nanos(373),
                read_response_overhead: Duration::from_nanos(300),
                nic_cache_qps: 1024,
                qp_cache_miss: Duration::from_nanos(1200),
                tcp_stack_oneway: Duration::from_micros(30),
                tcp_syscall: Duration::from_micros(8),
                tcp_bandwidth_factor: 0.45,
                kernel_copy_bandwidth: 2.0 * GIB as f64,
                socket_buffer: MIB,
                tcp_mss: 16 * KIB,
                tcp_connect: Duration::from_micros(200),
            },
            cpu: CpuProfile {
                wakeup: Duration::from_micros(10),
                handoff: Duration::from_micros(11),
                net_request_cost: Duration::from_micros(17),
                api_produce_base: Duration::from_micros(5),
                api_fetch_base: Duration::from_micros(7),
                crc_bandwidth: 3.4e9,
                heap_copy_bandwidth: 0.45e9,
                memcpy_bandwidth: 6.0e9,
                producer_copy_base: Duration::from_micros(2),
                tcp_client_extra: Duration::from_micros(55),
                repl_post_cost: Duration::from_micros(8),
            },
        }
    }

    /// Conservative lookahead for sharded parallel simulation of this
    /// profile's topology; see [`NetProfile::min_link_latency`].
    pub fn lookahead(&self) -> Duration {
        self.net.min_link_latency()
    }

    /// A profile with (almost) all costs zeroed: logic/unit tests use this
    /// so protocol behaviour can be asserted without timing arithmetic.
    /// Minimal non-zero gaps are kept where code relies on time advancing
    /// (e.g. FIFO tie-breaks do not need them, but polling loops must not
    /// spin forever at one instant).
    pub fn fast_test() -> Self {
        let zero = Duration::ZERO;
        let tick = Duration::from_nanos(1);
        Profile {
            net: NetProfile {
                link_bandwidth: 1e15,
                packet_size: 2 * KIB,
                propagation: tick,
                header_bytes: 0,
                rdma_post_overhead: zero,
                rdma_min_op_gap: zero,
                rdma_completion_overhead: zero,
                doorbell_overhead: zero,
                cqe_batch_marginal: zero,
                atomic_exec: zero,
                atomic_same_addr_gap: zero,
                read_response_overhead: zero,
                nic_cache_qps: 0,
                qp_cache_miss: zero,
                tcp_stack_oneway: tick,
                tcp_syscall: zero,
                tcp_bandwidth_factor: 1.0,
                kernel_copy_bandwidth: 1e15,
                socket_buffer: MIB,
                tcp_mss: 16 * KIB,
                tcp_connect: tick,
            },
            cpu: CpuProfile {
                wakeup: zero,
                handoff: zero,
                net_request_cost: zero,
                api_produce_base: zero,
                api_fetch_base: zero,
                crc_bandwidth: 1e15,
                heap_copy_bandwidth: 1e15,
                memcpy_bandwidth: 1e15,
                producer_copy_base: zero,
                tcp_client_extra: zero,
                repl_post_cost: zero,
            },
        }
    }
}

impl NetProfile {
    /// Minimum cross-node delivery latency of the fabric: the floor of any
    /// packet's flight time between two nodes. Every path charges at least
    /// the one-way propagation delay (wire time, stack costs, and queueing
    /// only add to it), so this is the conservative lookahead a sharded
    /// simulation may use — no event executed at time `t` on one shard can
    /// affect another shard before `t + min_link_latency()`.
    pub fn min_link_latency(&self) -> Duration {
        self.propagation
    }

    /// Time for `bytes` on the wire at full link goodput (headers included).
    pub fn wire_time(&self, bytes: u64) -> Duration {
        let total = bytes + self.header_bytes;
        Duration::from_nanos((total as f64 * 1e9 / self.link_bandwidth) as u64)
    }

    /// Wire time at the (slower) TCP goodput.
    pub fn tcp_wire_time(&self, bytes: u64) -> Duration {
        let total = bytes + self.header_bytes;
        let bw = self.link_bandwidth * self.tcp_bandwidth_factor;
        Duration::from_nanos((total as f64 * 1e9 / bw) as u64)
    }
}

/// Cost of copying `bytes` at `bandwidth` bytes/s.
pub fn copy_time(bytes: u64, bandwidth: f64) -> Duration {
    Duration::from_nanos((bytes as f64 * 1e9 / bandwidth) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn testbed_sane() {
        let p = Profile::testbed();
        // 6 GiB/s, ~1 KiB: ~160 ns
        let t = p.net.wire_time(1000);
        assert!(t > Duration::from_nanos(140) && t < Duration::from_nanos(200), "{t:?}");
        // The atomic rate limit is the paper's 2.68 Mops/s.
        let rate = 1e9 / p.net.atomic_same_addr_gap.as_nanos() as f64;
        assert!((rate / 1e6 - 2.68).abs() < 0.02, "rate={rate}");
    }

    #[test]
    fn fast_test_is_fast() {
        let p = Profile::fast_test();
        assert!(p.net.wire_time(1 << 30) < Duration::from_micros(2));
        assert_eq!(p.cpu.handoff, Duration::ZERO);
    }

    #[test]
    fn copy_time_scales() {
        assert_eq!(copy_time(1_000_000, 1e9), Duration::from_millis(1));
        assert_eq!(copy_time(0, 1e9), Duration::ZERO);
    }
}
