//! Simulated TCP over the fabric.
//!
//! Reproduces the properties of the kernel TCP/IP (IPoIB) path that the
//! paper identifies as Kafka's bottleneck (§4.2.1):
//!
//! * per-message syscall and stack-traversal latency,
//! * a **real** kernel↔user copy on each side (the "driver copies all
//!   received messages from its receive buffers to Kafka's receive buffers"
//!   copy — the bytes really are copied, and the copy is charged in virtual
//!   time),
//! * flow control via a bounded socket buffer,
//! * markedly lower goodput than verbs on the same link.
//!
//! The interface is a byte stream (`read_exact` / `write_all`), so protocol
//! code must do its own framing exactly as it would over real sockets.

use std::collections::VecDeque;
use std::fmt;

use sim::sync::mpsc;
use sim::sync::Semaphore;
use sim::SimTime;

use crate::fabric::{Fabric, NodeHandle, NodeId};
use crate::profile::copy_time;

/// Error for operations on a closed connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Closed;

impl fmt::Display for Closed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "connection closed by peer")
    }
}

impl std::error::Error for Closed {}

/// Error returned by [`connect`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectError {
    /// Nothing is listening at the destination address.
    ConnectionRefused,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "connection refused")
    }
}

impl std::error::Error for ConnectError {}

struct Chunk {
    arrival: SimTime,
    data: kdbuf::Buf,
}

/// A bound port's accept channel, stamped with the bind generation so a
/// stale [`TcpListener`]'s `Drop` (e.g. a crashed broker's accept loop
/// winding down after the port was force-unbound and rebound) cannot evict
/// a successor that re-bound the same port.
pub(crate) type ListenerSlot = (u64, mpsc::Sender<TcpStream>);

thread_local! {
    static NEXT_BIND_GEN: std::cell::Cell<u64> = const { std::cell::Cell::new(1) };
}

fn next_bind_gen() -> u64 {
    NEXT_BIND_GEN.with(|g| {
        let v = g.get();
        g.set(v + 1);
        v
    })
}

/// The write side of one direction of a connection.
pub struct WriteHalf {
    fabric: Fabric,
    src: NodeId,
    dst: NodeId,
    tx: mpsc::Sender<Chunk>,
    window: Semaphore,
    /// Trace context applied to wire reservations of subsequent writes, so a
    /// framing layer can attribute link traversals to one message's lifeline.
    trace: Option<kdtelem::TraceCtx>,
}

/// The read side of one direction of a connection.
pub struct ReadHalf {
    fabric: Fabric,
    rx: mpsc::Receiver<Chunk>,
    window: Semaphore,
    buffer: VecDeque<u8>,
    eof: bool,
}

/// A full-duplex simulated TCP connection.
pub struct TcpStream {
    read: ReadHalf,
    write: WriteHalf,
    peer: NodeId,
    local: NodeId,
}

fn pipe(fabric: &Fabric, src: NodeId, dst: NodeId) -> (WriteHalf, ReadHalf) {
    let (tx, rx) = mpsc::unbounded();
    let window = Semaphore::new(fabric.profile().net.socket_buffer as usize);
    (
        WriteHalf {
            fabric: fabric.clone(),
            src,
            dst,
            tx,
            window: window.clone(),
            trace: None,
        },
        ReadHalf {
            fabric: fabric.clone(),
            rx,
            window,
            buffer: VecDeque::new(),
            eof: false,
        },
    )
}

/// A passive listening socket.
pub struct TcpListener {
    node: NodeHandle,
    port: u16,
    gen: u64,
    incoming: mpsc::Receiver<TcpStream>,
}

impl TcpListener {
    /// Binds to an explicit port on `node`.
    ///
    /// # Panics
    /// Panics if the port is already bound (a configuration bug in a
    /// simulation scenario).
    pub fn bind(node: &NodeHandle, port: u16) -> TcpListener {
        let (tx, rx) = mpsc::unbounded();
        let gen = next_bind_gen();
        let prev = node
            .fabric
            .inner
            .tcp_listeners
            .borrow_mut()
            .insert((node.id, port), (gen, tx));
        assert!(
            prev.is_none(),
            "port {port} already bound on {}",
            node.name()
        );
        TcpListener {
            node: node.clone(),
            port,
            gen,
            incoming: rx,
        }
    }

    /// Binds to a fabric-allocated port.
    pub fn bind_auto(node: &NodeHandle) -> TcpListener {
        let port = node.fabric.alloc_port();
        Self::bind(node, port)
    }

    pub fn port(&self) -> u16 {
        self.port
    }

    pub fn local_addr(&self) -> (NodeId, u16) {
        (self.node.id, self.port)
    }

    /// Waits for the next inbound connection. Returns `None` if the fabric
    /// is being torn down.
    pub async fn accept(&mut self) -> Option<TcpStream> {
        self.incoming.recv().await
    }
}

impl Drop for TcpListener {
    fn drop(&mut self) {
        // Remove the slot only if it is still OUR bind: after a force
        // `unbind` the port may have been re-bound by a fresh process
        // before this stale listener unwound, and evicting the successor
        // would refuse every future connect to the port.
        let mut map = self.node.fabric.inner.tcp_listeners.borrow_mut();
        if map
            .get(&(self.node.id, self.port))
            .is_some_and(|(gen, _)| *gen == self.gen)
        {
            map.remove(&(self.node.id, self.port));
        }
    }
}

/// Force-unbinds a listening port from the outside (fault injection: a
/// crashed process's sockets close even though the accept loop still owns
/// the `TcpListener`). New connects are refused immediately, and once
/// transient senders drop, the owner's `accept()` returns `None` so its
/// loop exits. The eventual `Drop` is an idempotent no-op.
pub fn unbind(node: &NodeHandle, port: u16) -> bool {
    node.fabric
        .inner
        .tcp_listeners
        .borrow_mut()
        .remove(&(node.id, port))
        .is_some()
}

/// Opens a connection from `node` to `(dst, port)`. Pays the handshake cost.
pub async fn connect(
    node: &NodeHandle,
    dst: NodeId,
    port: u16,
) -> Result<TcpStream, ConnectError> {
    let fabric = &node.fabric;
    if fabric.path_blocked(node.id, dst) || fabric.path_blocked(dst, node.id) {
        return Err(ConnectError::ConnectionRefused);
    }
    let slot = fabric
        .inner
        .tcp_listeners
        .borrow()
        .get(&(dst, port))
        .map(|(_, tx)| tx.clone());
    let slot = slot.ok_or(ConnectError::ConnectionRefused)?;
    sim::time::sleep(fabric.profile().net.tcp_connect).await;

    let (w_cs, r_cs) = pipe(fabric, node.id, dst); // client -> server
    let (w_sc, r_sc) = pipe(fabric, dst, node.id); // server -> client
    let server = TcpStream {
        read: r_cs,
        write: w_sc,
        peer: node.id,
        local: dst,
    };
    let client = TcpStream {
        read: r_sc,
        write: w_cs,
        peer: dst,
        local: node.id,
    };
    slot.try_send(server)
        .map_err(|_| ConnectError::ConnectionRefused)?;
    Ok(client)
}

impl WriteHalf {
    /// Writes the whole buffer, respecting flow control. Charges the
    /// sender's syscall once plus the user→kernel copy per MSS chunk, and
    /// reserves wire time on the path.
    pub async fn write_all(&mut self, data: &[u8]) -> Result<(), Closed> {
        let profile = self.fabric.profile();
        let net = &profile.net;
        if data.is_empty() {
            return if self.tx.is_closed() { Err(Closed) } else { Ok(()) };
        }
        sim::time::sleep(net.tcp_syscall).await;
        // Injected-fault handling: a blocked path (partition / link down)
        // resets the connection; a drop costs one retransmission timeout
        // per dropped attempt.
        let rto = net.tcp_connect.max(std::time::Duration::from_micros(200));
        for chunk in data.chunks(net.tcp_mss as usize) {
            if self.fabric.path_blocked(self.src, self.dst) {
                return Err(Closed);
            }
            let permit = self
                .window
                .acquire(chunk.len())
                .await
                .map_err(|_| Closed)?;
            permit.forget(); // returned by the reader once consumed
            // The user→kernel copy really happens (into a pooled MSS-sized
            // packet buffer) and is charged at kernel copy bandwidth.
            sim::time::sleep(copy_time(chunk.len() as u64, net.kernel_copy_bandwidth)).await;
            let (fault_delay, retransmits) = self
                .fabric
                .node(self.src)
                .egress
                .sample_tcp_faults()
                .ok_or(Closed)?;
            let wire_arrival = {
                // Scoped so the ambient guard never lives across an await.
                let _scope = self.trace.map(kdtelem::enter_ctx);
                self.fabric
                    .reserve_tcp_path(sim::now(), self.src, self.dst, chunk.len() as u64)
            };
            let arrival = wire_arrival + net.tcp_stack_oneway + fault_delay + rto * retransmits;
            self.tx
                .try_send(Chunk {
                    arrival,
                    data: self.fabric.packet_pool().copy_in(chunk),
                })
                .map_err(|_| Closed)?;
        }
        Ok(())
    }

    /// True once the peer's read half is gone.
    pub fn is_closed(&self) -> bool {
        self.tx.is_closed()
    }

    /// Sets (or clears) the trace context attributed to subsequent writes.
    pub fn set_trace(&mut self, trace: Option<kdtelem::TraceCtx>) {
        self.trace = trace;
    }
}

impl ReadHalf {
    async fn fill(&mut self) -> bool {
        if self.eof {
            return false;
        }
        match self.rx.recv().await {
            None => {
                self.eof = true;
                false
            }
            Some(chunk) => {
                sim::time::sleep_until(chunk.arrival).await;
                // Kernel→user copy on delivery.
                let bw = self.fabric.profile().net.kernel_copy_bandwidth;
                sim::time::sleep(copy_time(chunk.data.len() as u64, bw)).await;
                self.window.add_permits(chunk.data.len());
                chunk.data.with(|s| self.buffer.extend(s));
                true
            }
        }
    }

    /// Reads exactly `n` bytes; `Err(Closed)` on EOF before `n` bytes.
    pub async fn read_exact(&mut self, n: usize) -> Result<Vec<u8>, Closed> {
        while self.buffer.len() < n {
            if !self.fill().await {
                return Err(Closed);
            }
        }
        Ok(self.buffer.drain(..n).collect())
    }

    /// Reads exactly `n` bytes, appending them to `out`. Avoids the
    /// intermediate allocation of [`read_exact`] when the caller owns a
    /// reusable buffer (e.g. a frame decoder's scratch).
    pub async fn read_exact_into(&mut self, n: usize, out: &mut Vec<u8>) -> Result<(), Closed> {
        while self.buffer.len() < n {
            if !self.fill().await {
                return Err(Closed);
            }
        }
        out.extend(self.buffer.drain(..n));
        Ok(())
    }

    /// Reads whatever is available (up to `max`), waiting for at least one
    /// byte. `Ok(empty)` is never returned; EOF is `Err(Closed)`.
    pub async fn read_some(&mut self, max: usize) -> Result<Vec<u8>, Closed> {
        while self.buffer.is_empty() {
            if !self.fill().await {
                return Err(Closed);
            }
        }
        let n = self.buffer.len().min(max);
        Ok(self.buffer.drain(..n).collect())
    }
}

impl TcpStream {
    pub fn peer(&self) -> NodeId {
        self.peer
    }

    pub fn local(&self) -> NodeId {
        self.local
    }

    pub async fn write_all(&mut self, data: &[u8]) -> Result<(), Closed> {
        self.write.write_all(data).await
    }

    pub async fn read_exact(&mut self, n: usize) -> Result<Vec<u8>, Closed> {
        self.read.read_exact(n).await
    }

    pub async fn read_exact_into(&mut self, n: usize, out: &mut Vec<u8>) -> Result<(), Closed> {
        self.read.read_exact_into(n, out).await
    }

    pub async fn read_some(&mut self, max: usize) -> Result<Vec<u8>, Closed> {
        self.read.read_some(max).await
    }

    /// Splits into independently-owned halves so requests can be pipelined
    /// (a writer task and a reader task).
    pub fn into_split(self) -> (ReadHalf, WriteHalf) {
        (self.read, self.write)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Profile;

    fn fabric2() -> (Fabric, NodeHandle, NodeHandle) {
        let f = Fabric::new(Profile::testbed());
        let a = f.add_node("a");
        let b = f.add_node("b");
        (f, a, b)
    }

    #[test]
    fn round_trip_bytes() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (_f, a, b) = fabric2();
            let mut listener = TcpListener::bind(&b, 9092);
            sim::spawn(async move {
                let mut s = listener.accept().await.unwrap();
                let req = s.read_exact(5).await.unwrap();
                assert_eq!(req, b"hello");
                s.write_all(b"world").await.unwrap();
            });
            let mut c = connect(&a, b.id, 9092).await.unwrap();
            c.write_all(b"hello").await.unwrap();
            assert_eq!(c.read_exact(5).await.unwrap(), b"world");
            // RTT includes connect, two stack traversals each way.
            assert!(sim::now().as_nanos() > 200_000);
        });
    }

    #[test]
    fn refused_when_no_listener() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (_f, a, b) = fabric2();
            assert_eq!(
                connect(&a, b.id, 1).await.err(),
                Some(ConnectError::ConnectionRefused)
            );
        });
    }

    #[test]
    fn eof_on_writer_drop() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (_f, a, b) = fabric2();
            let mut listener = TcpListener::bind(&b, 9092);
            sim::spawn(async move {
                let mut s = listener.accept().await.unwrap();
                s.write_all(b"x").await.unwrap();
                // s dropped here -> EOF at the client.
            });
            let mut c = connect(&a, b.id, 9092).await.unwrap();
            assert_eq!(c.read_exact(1).await.unwrap(), b"x");
            assert_eq!(c.read_exact(1).await, Err(Closed));
        });
    }

    #[test]
    fn large_transfer_respects_tcp_bandwidth() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (f, a, b) = fabric2();
            let mut listener = TcpListener::bind(&b, 9092);
            let size = 8 * 1024 * 1024u64;
            let reader = sim::spawn(async move {
                let mut s = listener.accept().await.unwrap();
                let t0 = sim::now();
                s.read_exact(size as usize).await.unwrap();
                sim::now() - t0
            });
            let mut c = connect(&a, b.id, 9092).await.unwrap();
            let data = vec![0xabu8; size as usize];
            c.write_all(&data).await.unwrap();
            let elapsed = reader.await.unwrap();
            let gbps = size as f64 / elapsed.as_secs_f64() / 1e9;
            // TCP factor 0.45 of 6 GiB/s ≈ 2.9 GB/s wire, minus copies:
            // must be well under verbs goodput but still > 1 GB/s.
            assert!(gbps < 3.0, "gbps={gbps}");
            assert!(gbps > 0.8, "gbps={gbps}");
            let (eg, _) = f.node_bytes(a.id);
            assert!(eg >= size);
        });
    }

    #[test]
    fn flow_control_blocks_fast_writer() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (_f, a, b) = fabric2();
            let mut listener = TcpListener::bind(&b, 9092);
            sim::spawn(async move {
                let mut s = listener.accept().await.unwrap();
                // Slow reader: drain after 10 ms.
                sim::time::sleep(std::time::Duration::from_millis(10)).await;
                s.read_exact(4 * 1024 * 1024).await.unwrap();
                // Hold the stream so the writer's Err path is not taken.
                sim::time::sleep(std::time::Duration::from_millis(100)).await;
            });
            let mut c = connect(&a, b.id, 9092).await.unwrap();
            let data = vec![1u8; 4 * 1024 * 1024];
            c.write_all(&data).await.unwrap();
            // 4 MiB through a 1 MiB socket buffer against a reader that
            // starts at t=10ms: writer must have blocked past that point.
            assert!(sim::now().as_nanos() > 10_000_000);
        });
    }

    #[test]
    fn unbind_refuses_connects_and_wakes_accept() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (_f, a, b) = fabric2();
            let mut listener = TcpListener::bind(&b, 9092);
            let b2 = b.clone();
            let accepts = sim::spawn(async move {
                let mut n = 0;
                while listener.accept().await.is_some() {
                    n += 1;
                }
                n
            });
            connect(&a, b.id, 9092).await.unwrap();
            assert!(unbind(&b2, 9092), "was bound");
            assert!(!unbind(&b2, 9092), "idempotent");
            assert_eq!(
                connect(&a, b.id, 9092).await.err(),
                Some(ConnectError::ConnectionRefused)
            );
            // With the slot gone, the accept loop drains and exits.
            assert_eq!(accepts.await.unwrap(), 1);
        });
    }

    #[test]
    fn link_down_resets_writes_and_refuses_connects() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (f, a, b) = fabric2();
            let mut listener = TcpListener::bind(&b, 9092);
            sim::spawn(async move {
                let mut s = listener.accept().await.unwrap();
                let _ = s.read_exact(1).await;
                sim::time::sleep(std::time::Duration::from_secs(1)).await;
            });
            let mut c = connect(&a, b.id, 9092).await.unwrap();
            c.write_all(b"x").await.unwrap();
            f.set_node_down(b.id);
            assert_eq!(c.write_all(b"y").await, Err(Closed));
            assert_eq!(
                connect(&a, b.id, 9092).await.err(),
                Some(ConnectError::ConnectionRefused)
            );
            f.set_node_up(b.id);
        });
    }

    #[test]
    fn partition_blocks_both_directions_until_healed() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (f, a, b) = fabric2();
            f.partition_pair(a.id, b.id);
            assert!(f.path_blocked(a.id, b.id));
            assert!(f.path_blocked(b.id, a.id));
            assert_eq!(
                connect(&a, b.id, 9092).await.err(),
                Some(ConnectError::ConnectionRefused)
            );
            f.heal_pair(a.id, b.id);
            assert!(!f.path_blocked(a.id, b.id));
        });
    }

    #[test]
    fn injected_drops_delay_delivery_deterministically() {
        let run = |seed: u64| {
            let rt = sim::Runtime::new();
            rt.block_on(async move {
                let (f, a, b) = fabric2();
                f.set_tcp_drop(a.id, 0.5, seed);
                let mut listener = TcpListener::bind(&b, 9092);
                let reader = sim::spawn(async move {
                    let mut s = listener.accept().await.unwrap();
                    s.read_exact(64).await.unwrap();
                    sim::now().as_nanos()
                });
                let mut c = connect(&a, b.id, 9092).await.unwrap();
                c.write_all(&[7u8; 64]).await.unwrap();
                let t = reader.await.unwrap();
                sim::time::sleep(std::time::Duration::from_millis(1)).await;
                t
            })
        };
        let baseline = {
            let rt = sim::Runtime::new();
            rt.block_on(async {
                let (_f, a, b) = fabric2();
                let mut listener = TcpListener::bind(&b, 9092);
                let reader = sim::spawn(async move {
                    let mut s = listener.accept().await.unwrap();
                    s.read_exact(64).await.unwrap();
                    sim::now().as_nanos()
                });
                let mut c = connect(&a, b.id, 9092).await.unwrap();
                c.write_all(&[7u8; 64]).await.unwrap();
                reader.await.unwrap()
            })
        };
        // Seed 3 drops the first attempt of this chunk (stable property of
        // the in-tree RNG); the delivery pays at least one RTO.
        let delayed = run(3);
        assert_eq!(delayed, run(3), "same seed, same timeline");
        assert!(
            delayed >= baseline,
            "faulted run cannot be faster than baseline"
        );
    }

    #[test]
    fn split_allows_pipelining() {
        let rt = sim::Runtime::new();
        rt.block_on(async {
            let (_f, a, b) = fabric2();
            let mut listener = TcpListener::bind(&b, 9092);
            sim::spawn(async move {
                let mut s = listener.accept().await.unwrap();
                for _ in 0..3 {
                    let v = s.read_exact(1).await.unwrap();
                    s.write_all(&v).await.unwrap();
                }
            });
            let c = connect(&a, b.id, 9092).await.unwrap();
            let (mut r, mut w) = c.into_split();
            let writer = sim::spawn(async move {
                for i in 0..3u8 {
                    w.write_all(&[i]).await.unwrap();
                }
                w
            });
            let mut got = Vec::new();
            for _ in 0..3 {
                got.extend(r.read_exact(1).await.unwrap());
            }
            writer.await.unwrap();
            assert_eq!(got, vec![0, 1, 2]);
        });
    }
}
