//! FIFO link serialisation.
//!
//! A [`Link`] models one direction of a NIC port: transfers queue behind one
//! another at a fixed bandwidth, and optionally at a minimum per-message
//! occupancy (the verbs message-rate limit). Reservation is O(1): the link
//! keeps only the time until which it is busy.

use std::cell::{Cell, RefCell};
use std::time::Duration;

use sim::rng::SimRng;
use sim::SimTime;

/// Give up on a TCP chunk after this many consecutive injected drops (a
/// real stack resets the connection once retransmissions are exhausted).
const MAX_RETRANSMITS: u32 = 6;

/// Runtime fault state attached to a link by the fault-injection layer.
/// Each faulted link owns a *private* RNG stream seeded explicitly, so
/// injecting faults on one link never perturbs the virtual-time ordering
/// of traffic on untouched links.
struct LinkFaults {
    drop_p: f64,
    rng: SimRng,
    delay: Duration,
}

/// One direction of a network port.
pub struct Link {
    /// Bandwidth in bytes/second.
    bandwidth: f64,
    busy_until: Cell<u64>,
    bytes_carried: Cell<u64>,
    messages: Cell<u64>,
    /// Administratively down (fault injection); TCP sends fail while set.
    down: Cell<bool>,
    /// Drop/delay fault state; `None` on healthy links (the common case
    /// never allocates an RNG).
    faults: RefCell<Option<LinkFaults>>,
    // Telemetry handles from the ambient registry (shared names: every link
    // on a fabric aggregates into the same rows at snapshot time).
    queue_delay_ns: kdtelem::Histogram,
    busy_ns: kdtelem::Counter,
    bytes_counter: kdtelem::Counter,
    drops: kdtelem::Counter,
    /// Instantaneous backlog (ns of queued serialisation work) observed at
    /// each reservation; the time-series sampler reads the current value and
    /// the per-sample peak, making link congestion visible in `kdtop`.
    backlog_ns: kdtelem::Gauge,
}

/// Outcome of a [`Link::reserve`]: when the message starts and finishes
/// occupying the link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    pub start: SimTime,
    pub end: SimTime,
}

impl Link {
    pub fn new(bandwidth: f64) -> Self {
        assert!(bandwidth > 0.0);
        let telem = kdtelem::current();
        Link {
            bandwidth,
            busy_until: Cell::new(0),
            bytes_carried: Cell::new(0),
            messages: Cell::new(0),
            down: Cell::new(false),
            faults: RefCell::new(None),
            queue_delay_ns: telem.histogram("netsim", "link.queue_delay_ns"),
            busy_ns: telem.counter("netsim", "link.busy_ns"),
            bytes_counter: telem.counter("netsim", "link.bytes"),
            drops: telem.counter("netsim", "link.drops"),
            backlog_ns: telem.gauge("netsim", "link.backlog_ns"),
        }
    }

    /// Takes the link administratively down: TCP traffic over it fails
    /// until [`set_up`](Self::set_up).
    pub fn set_down(&self) {
        self.down.set(true);
    }

    /// Brings the link back up.
    pub fn set_up(&self) {
        self.down.set(false);
    }

    pub fn is_down(&self) -> bool {
        self.down.get()
    }

    /// Arms a deterministic per-chunk drop probability. The RNG stream is
    /// private to this link and seeded here, so other links' schedules are
    /// bit-identical whether or not this fault is armed.
    pub fn set_drop(&self, drop_p: f64, seed: u64) {
        assert!((0.0..=1.0).contains(&drop_p));
        let mut faults = self.faults.borrow_mut();
        let delay = faults.as_ref().map_or(Duration::ZERO, |f| f.delay);
        *faults = Some(LinkFaults {
            drop_p,
            rng: SimRng::seed_from_u64(seed),
            delay,
        });
    }

    /// Arms a fixed extra one-way delay for every TCP chunk on this link.
    pub fn set_delay(&self, delay: Duration) {
        let mut faults = self.faults.borrow_mut();
        match faults.as_mut() {
            Some(f) => f.delay = delay,
            None => {
                *faults = Some(LinkFaults {
                    drop_p: 0.0,
                    rng: SimRng::seed_from_u64(0),
                    delay,
                })
            }
        }
    }

    /// Clears drop/delay faults (the down flag is separate).
    pub fn clear_faults(&self) {
        *self.faults.borrow_mut() = None;
    }

    /// Samples fault state for one TCP chunk: the injected extra delay plus
    /// the number of retransmissions consumed by drops. `None` means the
    /// chunk was dropped more than `MAX_RETRANSMITS` times in a row — the
    /// connection resets. Healthy links never touch an RNG.
    pub fn sample_tcp_faults(&self) -> Option<(Duration, u32)> {
        let mut faults = self.faults.borrow_mut();
        let Some(f) = faults.as_mut() else {
            return Some((Duration::ZERO, 0));
        };
        let mut retries = 0u32;
        while f.drop_p > 0.0 && f.rng.random_bool(f.drop_p) {
            retries += 1;
            self.drops.add(1);
            if retries > MAX_RETRANSMITS {
                return None;
            }
        }
        Some((f.delay, retries))
    }

    /// Serialisation delay of `bytes` at this link's bandwidth.
    pub fn wire_time(&self, bytes: u64) -> Duration {
        Duration::from_nanos((bytes as f64 * 1e9 / self.bandwidth) as u64)
    }

    /// Reserves the link for a message of `bytes`, occupying it for at least
    /// `min_occupancy`. `now` is the earliest possible start.
    pub fn reserve(&self, now: SimTime, bytes: u64, min_occupancy: Duration) -> Reservation {
        let occupancy = self.wire_time(bytes).max(min_occupancy);
        self.commit(now, bytes, occupancy)
    }

    /// Reserves at an explicit bandwidth share (used by the TCP path, which
    /// achieves only a fraction of the verbs goodput).
    pub fn reserve_at(
        &self,
        now: SimTime,
        bytes: u64,
        bandwidth: f64,
        min_occupancy: Duration,
    ) -> Reservation {
        let wire = Duration::from_nanos((bytes as f64 * 1e9 / bandwidth) as u64);
        let occupancy = wire.max(min_occupancy);
        self.commit(now, bytes, occupancy)
    }

    fn commit(&self, now: SimTime, bytes: u64, occupancy: Duration) -> Reservation {
        let start_ns = now.as_nanos().max(self.busy_until.get());
        let end_ns = start_ns + occupancy.as_nanos() as u64;
        self.busy_until.set(end_ns);
        self.bytes_carried.set(self.bytes_carried.get() + bytes);
        self.messages.set(self.messages.get() + 1);
        self.queue_delay_ns.record(start_ns - now.as_nanos());
        self.busy_ns.add(end_ns - start_ns);
        self.bytes_counter.add(bytes);
        self.backlog_ns.set(end_ns - now.as_nanos());
        Reservation {
            start: SimTime::from_nanos(start_ns),
            end: SimTime::from_nanos(end_ns),
        }
    }

    /// Earliest time a new reservation could start.
    pub fn busy_until(&self) -> SimTime {
        SimTime::from_nanos(self.busy_until.get())
    }

    /// Total payload bytes carried (telemetry).
    pub fn bytes_carried(&self) -> u64 {
        self.bytes_carried.get()
    }

    /// Total messages carried (telemetry).
    pub fn messages(&self) -> u64 {
        self.messages.get()
    }

    /// Total time this link was occupied by reservations (telemetry); with
    /// the run's elapsed virtual time this gives link utilization.
    pub fn busy_time(&self) -> Duration {
        Duration::from_nanos(self.busy_ns.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn idle_link_starts_immediately() {
        let l = Link::new(1e9); // 1 GB/s -> 1 ns per byte
        let r = l.reserve(t(100), 500, Duration::ZERO);
        assert_eq!(r.start, t(100));
        assert_eq!(r.end, t(600));
    }

    #[test]
    fn back_to_back_serialises() {
        let l = Link::new(1e9);
        let a = l.reserve(t(0), 1000, Duration::ZERO);
        let b = l.reserve(t(0), 1000, Duration::ZERO);
        assert_eq!(a.end, t(1000));
        assert_eq!(b.start, t(1000));
        assert_eq!(b.end, t(2000));
    }

    #[test]
    fn min_occupancy_caps_message_rate() {
        let l = Link::new(1e12);
        let gap = Duration::from_nanos(120);
        let a = l.reserve(t(0), 8, gap);
        let b = l.reserve(t(0), 8, gap);
        assert_eq!(a.end, t(120));
        assert_eq!(b.end, t(240));
    }

    #[test]
    fn gap_in_traffic_leaves_link_idle() {
        let l = Link::new(1e9);
        l.reserve(t(0), 100, Duration::ZERO);
        let r = l.reserve(t(10_000), 100, Duration::ZERO);
        assert_eq!(r.start, t(10_000));
    }

    #[test]
    fn telemetry_counts() {
        let l = Link::new(1e9);
        l.reserve(t(0), 100, Duration::ZERO);
        l.reserve(t(0), 200, Duration::ZERO);
        assert_eq!(l.bytes_carried(), 300);
        assert_eq!(l.messages(), 2);
        assert_eq!(l.busy_time(), Duration::from_nanos(300));
    }

    #[test]
    fn down_flag_round_trips() {
        let l = Link::new(1e9);
        assert!(!l.is_down());
        l.set_down();
        assert!(l.is_down());
        l.set_up();
        assert!(!l.is_down());
    }

    #[test]
    fn drop_sampling_is_deterministic_per_seed() {
        let sample = |seed: u64| {
            let l = Link::new(1e9);
            l.set_drop(0.3, seed);
            (0..64)
                .map(|_| l.sample_tcp_faults().map(|(_, r)| r))
                .collect::<Vec<_>>()
        };
        assert_eq!(sample(7), sample(7), "same seed, same schedule");
        assert_ne!(sample(7), sample(8), "different seed diverges");
    }

    #[test]
    fn healthy_link_never_samples() {
        let l = Link::new(1e9);
        for _ in 0..16 {
            assert_eq!(l.sample_tcp_faults(), Some((Duration::ZERO, 0)));
        }
        l.set_delay(Duration::from_micros(50));
        assert_eq!(
            l.sample_tcp_faults(),
            Some((Duration::from_micros(50), 0))
        );
        l.clear_faults();
        assert_eq!(l.sample_tcp_faults(), Some((Duration::ZERO, 0)));
    }

    #[test]
    fn certain_drop_exhausts_retransmits() {
        let l = Link::new(1e9);
        l.set_drop(1.0, 1);
        assert_eq!(l.sample_tcp_faults(), None, "p=1 must reset");
    }

    #[test]
    fn queueing_delay_lands_in_registry() {
        let reg = kdtelem::Registry::new();
        let _g = kdtelem::enter(&reg);
        let l = Link::new(1e9);
        l.reserve(t(0), 1000, Duration::ZERO); // starts at 0, no queueing
        l.reserve(t(0), 1000, Duration::ZERO); // queues 1000ns behind the first
        let snap = reg.snapshot();
        let h = snap.histogram("netsim", "link.queue_delay_ns").unwrap();
        assert_eq!(h.stats.count, 2);
        assert_eq!(h.stats.min, 0);
        // 1000 lands in a log-linear bucket whose high end is < 1063.
        assert!(h.stats.max >= 1000 && h.stats.max < 1063);
        assert_eq!(snap.counter("netsim", "link.busy_ns"), Some(2000));
        assert_eq!(snap.counter("netsim", "link.bytes"), Some(2000));
    }
}
