//! Property tests of the simulated TCP byte stream: arbitrary write/read
//! chunkings must deliver exactly the written bytes, in order, with
//! monotonic link timing.

use proptest::prelude::*;

use netsim::profile::Profile;
use netsim::tcp::{connect, TcpListener};
use netsim::Fabric;

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Bytes written in arbitrary chunks are read back exactly, regardless
    /// of the reader's own chunking.
    #[test]
    fn byte_stream_integrity(
        writes in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..5000), 1..12),
        read_chunk in 1usize..8192,
    ) {
        let rt = sim::Runtime::new();
        rt.block_on(async move {
            let f = Fabric::new(Profile::testbed());
            let a = f.add_node("a");
            let b = f.add_node("b");
            let mut listener = TcpListener::bind(&b, 1);
            let total: usize = writes.iter().map(Vec::len).sum();
            let expect: Vec<u8> = writes.iter().flatten().copied().collect();
            let reader = sim::spawn(async move {
                let mut s = listener.accept().await.unwrap();
                let mut got = Vec::with_capacity(total);
                while got.len() < total {
                    let n = read_chunk.min(total - got.len());
                    got.extend(s.read_exact(n).await.unwrap());
                }
                got
            });
            let mut c = connect(&a, b.id, 1).await.unwrap();
            for w in &writes {
                c.write_all(w).await.unwrap();
            }
            let got = reader.await.unwrap();
            assert_eq!(got, expect);
        });
    }

    /// Link reservations never travel back in time and carry all bytes.
    #[test]
    fn link_reservations_monotonic(
        ops in proptest::collection::vec((0u64..10_000, 1u64..100_000), 1..64),
    ) {
        use netsim::Link;
        use std::time::Duration;
        let l = Link::new(1e9);
        let mut last_end = 0u64;
        let mut now = 0u64;
        let mut total = 0u64;
        for (advance, bytes) in ops {
            now += advance;
            let r = l.reserve(sim::SimTime::from_nanos(now), bytes, Duration::ZERO);
            assert!(r.start.as_nanos() >= now.min(last_end.max(now)));
            assert!(r.end > r.start || bytes == 0);
            assert!(r.start.as_nanos() >= last_end || last_end == 0 || r.start.as_nanos() >= last_end,
                "FIFO violated");
            last_end = r.end.as_nanos();
            total += bytes;
        }
        assert_eq!(l.bytes_carried(), total);
    }
}
