//! Pooled byte buffers for the simulator's hot datapath.
//!
//! Two primitives, both zero-dependency and single-threaded (the simulator
//! runs one thread; everything here is `Rc`/thread-local based):
//!
//! * [`Pool`] / [`Buf`] — a slab of fixed-size chunks handed out as cheaply
//!   sliceable, reference-counted views (a minimal `Bytes`). Dropping the
//!   last view of a chunk returns it — *including its `Rc` allocation* — to
//!   the pool free list, so a steady-state producer/consumer pair performs
//!   zero allocator traffic per packet.
//! * [`Scratch`] / [`scratch`] — a thread-local stack of reusable `Vec<u8>`s
//!   for transient encode/snapshot work (frame building, read staging).
//!   Dropping a `Scratch` clears the vector but keeps its capacity.
//!
//! Neither primitive affects virtual time: pooling replaces real allocator
//! calls with free-list pushes, and every simulated cost (kernel copy time,
//! wire time) is charged by the caller exactly as before.

use std::cell::{Cell, RefCell};
use std::ops::{Deref, DerefMut};
use std::rc::{Rc, Weak};

/// Default chunk size: comfortably a jumbo-ish packet / one MSS segment.
pub const DEFAULT_CHUNK: usize = 2048;

#[derive(Default)]
struct PoolStats {
    /// Chunks created fresh from the allocator.
    allocated: Cell<u64>,
    /// Chunk handouts served from the free list (no allocator traffic).
    recycled: Cell<u64>,
}

struct PoolInner {
    chunk_size: usize,
    free: RefCell<Vec<Rc<ChunkInner>>>,
    stats: PoolStats,
}

struct ChunkInner {
    data: RefCell<Box<[u8]>>,
    pool: Weak<PoolInner>,
}

/// A pool of fixed-size byte chunks. Clone handles freely; the free list is
/// shared.
#[derive(Clone)]
pub struct Pool {
    inner: Rc<PoolInner>,
}

impl Pool {
    pub fn new(chunk_size: usize) -> Pool {
        assert!(chunk_size > 0);
        Pool {
            inner: Rc::new(PoolInner {
                chunk_size,
                free: RefCell::new(Vec::new()),
                stats: PoolStats::default(),
            }),
        }
    }

    pub fn chunk_size(&self) -> usize {
        self.inner.chunk_size
    }

    /// Copies `bytes` into a pooled chunk and returns a view of exactly that
    /// prefix. Oversized payloads get a dedicated right-sized chunk that is
    /// dropped (not recycled) when released, so the free list stays
    /// uniform.
    pub fn copy_in(&self, bytes: &[u8]) -> Buf {
        let chunk = if bytes.len() <= self.inner.chunk_size {
            match self.inner.free.borrow_mut().pop() {
                Some(c) => {
                    debug_assert_eq!(Rc::strong_count(&c), 1);
                    self.inner.stats.recycled.set(self.inner.stats.recycled.get() + 1);
                    c
                }
                None => self.fresh(self.inner.chunk_size),
            }
        } else {
            self.fresh(bytes.len())
        };
        chunk.data.borrow_mut()[..bytes.len()].copy_from_slice(bytes);
        Buf {
            chunk,
            off: 0,
            len: bytes.len(),
        }
    }

    fn fresh(&self, size: usize) -> Rc<ChunkInner> {
        self.inner.stats.allocated.set(self.inner.stats.allocated.get() + 1);
        Rc::new(ChunkInner {
            data: RefCell::new(vec![0u8; size].into_boxed_slice()),
            pool: Rc::downgrade(&self.inner),
        })
    }

    /// Chunks created fresh from the allocator (lifetime total).
    pub fn allocated_chunks(&self) -> u64 {
        self.inner.stats.allocated.get()
    }

    /// Handouts served from the free list (lifetime total).
    pub fn recycled_chunks(&self) -> u64 {
        self.inner.stats.recycled.get()
    }

    /// Chunks currently parked on the free list.
    pub fn free_chunks(&self) -> usize {
        self.inner.free.borrow().len()
    }
}

/// A reference-counted view into a pooled chunk. Cloning and slicing are
/// refcount bumps; dropping the last view recycles the chunk.
pub struct Buf {
    chunk: Rc<ChunkInner>,
    off: usize,
    len: usize,
}

impl Buf {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the view's bytes.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let data = self.chunk.data.borrow();
        f(&data[self.off..self.off + self.len])
    }

    /// Copies the view into `dst` (`dst.len()` must equal `self.len()`).
    pub fn copy_to(&self, dst: &mut [u8]) {
        self.with(|src| dst.copy_from_slice(src));
    }

    /// Appends the view's bytes to `dst`.
    pub fn extend_into(&self, dst: &mut Vec<u8>) {
        self.with(|src| dst.extend_from_slice(src));
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.with(|src| src.to_vec())
    }

    /// A sub-view sharing the same chunk (refcount bump, no copy).
    pub fn slice(&self, off: usize, len: usize) -> Buf {
        assert!(off + len <= self.len);
        Buf {
            chunk: Rc::clone(&self.chunk),
            off: self.off + off,
            len,
        }
    }
}

impl Clone for Buf {
    fn clone(&self) -> Buf {
        Buf {
            chunk: Rc::clone(&self.chunk),
            off: self.off,
            len: self.len,
        }
    }
}

impl Drop for Buf {
    fn drop(&mut self) {
        // Last view out returns the chunk — Rc box and all — to the pool,
        // provided it is the pool's uniform size (oversized one-offs just
        // free).
        if Rc::strong_count(&self.chunk) == 1 {
            if let Some(pool) = self.chunk.pool.upgrade() {
                if self.chunk.data.borrow().len() == pool.chunk_size {
                    pool.free.borrow_mut().push(Rc::clone(&self.chunk));
                }
            }
        }
    }
}

impl std::fmt::Debug for Buf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Buf(len={})", self.len)
    }
}

thread_local! {
    static SCRATCH_STACK: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// A reusable `Vec<u8>` borrowed from a thread-local stack; cleared (but
/// capacity kept) and returned on drop. Derefs to `Vec<u8>`.
pub struct Scratch {
    vec: Vec<u8>,
}

/// Takes a cleared scratch vector from the thread-local stack (or a fresh
/// one the first few times).
pub fn scratch() -> Scratch {
    let vec = SCRATCH_STACK.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    Scratch { vec }
}

impl Scratch {
    /// Detaches the underlying vector (it will not return to the stack).
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.vec)
    }
}

impl Deref for Scratch {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.vec
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if self.vec.capacity() == 0 {
            return; // taken by into_vec, or never grew
        }
        self.vec.clear();
        SCRATCH_STACK.with(|s| s.borrow_mut().push(std::mem::take(&mut self.vec)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_recycle_without_new_allocations() {
        let pool = Pool::new(64);
        for i in 0..100u8 {
            let b = pool.copy_in(&[i; 64]);
            b.with(|s| assert!(s.iter().all(|&x| x == i)));
        }
        // One chunk bounced in and out of the free list the whole time.
        assert_eq!(pool.allocated_chunks(), 1);
        assert_eq!(pool.recycled_chunks(), 99);
        assert_eq!(pool.free_chunks(), 1);
    }

    #[test]
    fn slices_share_the_chunk_and_defer_recycling() {
        let pool = Pool::new(32);
        let b = pool.copy_in(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let tail = b.slice(4, 4);
        drop(b);
        assert_eq!(pool.free_chunks(), 0, "live slice pins the chunk");
        tail.with(|s| assert_eq!(s, &[5, 6, 7, 8]));
        drop(tail);
        assert_eq!(pool.free_chunks(), 1);
    }

    #[test]
    fn oversized_payloads_get_dedicated_chunks() {
        let pool = Pool::new(8);
        let b = pool.copy_in(&[9u8; 100]);
        assert_eq!(b.len(), 100);
        b.with(|s| assert_eq!(s.len(), 100));
        drop(b);
        assert_eq!(pool.free_chunks(), 0, "oversize chunks are not pooled");
        // A uniform-size handout still pools.
        drop(pool.copy_in(&[1u8; 8]));
        assert_eq!(pool.free_chunks(), 1);
    }

    #[test]
    fn copies_in_and_out_round_trip() {
        let pool = Pool::new(16);
        let b = pool.copy_in(b"hello world");
        let mut out = vec![0u8; b.len()];
        b.copy_to(&mut out);
        assert_eq!(&out, b"hello world");
        let mut acc = Vec::new();
        b.extend_into(&mut acc);
        b.extend_into(&mut acc);
        assert_eq!(acc.len(), 22);
        assert_eq!(b.to_vec(), b"hello world");
        assert_eq!(b.slice(6, 5).to_vec(), b"world");
    }

    #[test]
    fn scratch_keeps_capacity_across_uses() {
        let cap = {
            let mut s = scratch();
            s.extend_from_slice(&[0u8; 4096]);
            s.capacity()
        };
        let s = scratch();
        assert!(s.is_empty());
        assert!(s.capacity() >= cap, "capacity retained across uses");
        assert_eq!(s.capacity(), cap);
    }

    #[test]
    fn scratch_into_vec_detaches() {
        let mut s = scratch();
        s.extend_from_slice(b"keep me");
        let v = s.into_vec();
        assert_eq!(&v, b"keep me");
    }
}
