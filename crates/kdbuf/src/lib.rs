//! Pooled byte buffers for the simulator's hot datapath.
//!
//! Two primitives, both zero-dependency and single-threaded (the simulator
//! runs one thread; everything here is `Rc`/thread-local based):
//!
//! * [`Pool`] / [`Buf`] — a slab of fixed-size chunks handed out as cheaply
//!   sliceable, reference-counted views (a minimal `Bytes`). Dropping the
//!   last view of a chunk returns it — *including its `Rc` allocation* — to
//!   the pool free list, so a steady-state producer/consumer pair performs
//!   zero allocator traffic per packet.
//! * [`Scratch`] / [`scratch`] — a thread-local stack of reusable `Vec<u8>`s
//!   for transient encode/snapshot work (frame building, read staging).
//!   Dropping a `Scratch` clears the vector but keeps its capacity.
//!
//! Neither primitive affects virtual time: pooling replaces real allocator
//! calls with free-list pushes, and every simulated cost (kernel copy time,
//! wire time) is charged by the caller exactly as before.

use std::cell::{Cell, RefCell};
use std::mem::MaybeUninit;
use std::ops::{Deref, DerefMut};
use std::rc::{Rc, Weak};

/// Default chunk size: comfortably a jumbo-ish packet / one MSS segment.
pub const DEFAULT_CHUNK: usize = 2048;

#[derive(Default)]
struct PoolStats {
    /// Chunks created fresh from the allocator.
    allocated: Cell<u64>,
    /// Chunk handouts served from the free list (no allocator traffic).
    recycled: Cell<u64>,
}

struct PoolInner {
    chunk_size: usize,
    free: RefCell<Vec<Rc<ChunkInner>>>,
    stats: PoolStats,
}

struct ChunkInner {
    data: RefCell<Box<[u8]>>,
    pool: Weak<PoolInner>,
}

/// A pool of fixed-size byte chunks. Clone handles freely; the free list is
/// shared.
#[derive(Clone)]
pub struct Pool {
    inner: Rc<PoolInner>,
}

impl Pool {
    pub fn new(chunk_size: usize) -> Pool {
        assert!(chunk_size > 0);
        Pool {
            inner: Rc::new(PoolInner {
                chunk_size,
                free: RefCell::new(Vec::new()),
                stats: PoolStats::default(),
            }),
        }
    }

    pub fn chunk_size(&self) -> usize {
        self.inner.chunk_size
    }

    /// Copies `bytes` into a pooled chunk and returns a view of exactly that
    /// prefix. Oversized payloads get a dedicated right-sized chunk that is
    /// dropped (not recycled) when released, so the free list stays
    /// uniform.
    pub fn copy_in(&self, bytes: &[u8]) -> Buf {
        let chunk = if bytes.len() <= self.inner.chunk_size {
            match self.inner.free.borrow_mut().pop() {
                Some(c) => {
                    debug_assert_eq!(Rc::strong_count(&c), 1);
                    self.inner.stats.recycled.set(self.inner.stats.recycled.get() + 1);
                    c
                }
                None => self.fresh(self.inner.chunk_size),
            }
        } else {
            self.fresh(bytes.len())
        };
        chunk.data.borrow_mut()[..bytes.len()].copy_from_slice(bytes);
        Buf {
            chunk,
            off: 0,
            len: bytes.len(),
        }
    }

    fn fresh(&self, size: usize) -> Rc<ChunkInner> {
        self.inner.stats.allocated.set(self.inner.stats.allocated.get() + 1);
        Rc::new(ChunkInner {
            data: RefCell::new(vec![0u8; size].into_boxed_slice()),
            pool: Rc::downgrade(&self.inner),
        })
    }

    /// Chunks created fresh from the allocator (lifetime total).
    pub fn allocated_chunks(&self) -> u64 {
        self.inner.stats.allocated.get()
    }

    /// Handouts served from the free list (lifetime total).
    pub fn recycled_chunks(&self) -> u64 {
        self.inner.stats.recycled.get()
    }

    /// Chunks currently parked on the free list.
    pub fn free_chunks(&self) -> usize {
        self.inner.free.borrow().len()
    }
}

/// A reference-counted view into a pooled chunk. Cloning and slicing are
/// refcount bumps; dropping the last view recycles the chunk.
pub struct Buf {
    chunk: Rc<ChunkInner>,
    off: usize,
    len: usize,
}

impl Buf {
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the view's bytes.
    pub fn with<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        let data = self.chunk.data.borrow();
        f(&data[self.off..self.off + self.len])
    }

    /// Copies the view into `dst` (`dst.len()` must equal `self.len()`).
    pub fn copy_to(&self, dst: &mut [u8]) {
        self.with(|src| dst.copy_from_slice(src));
    }

    /// Appends the view's bytes to `dst`.
    pub fn extend_into(&self, dst: &mut Vec<u8>) {
        self.with(|src| dst.extend_from_slice(src));
    }

    pub fn to_vec(&self) -> Vec<u8> {
        self.with(|src| src.to_vec())
    }

    /// A sub-view sharing the same chunk (refcount bump, no copy).
    pub fn slice(&self, off: usize, len: usize) -> Buf {
        assert!(off + len <= self.len);
        Buf {
            chunk: Rc::clone(&self.chunk),
            off: self.off + off,
            len,
        }
    }
}

impl Clone for Buf {
    fn clone(&self) -> Buf {
        Buf {
            chunk: Rc::clone(&self.chunk),
            off: self.off,
            len: self.len,
        }
    }
}

impl Drop for Buf {
    fn drop(&mut self) {
        // Last view out returns the chunk — Rc box and all — to the pool,
        // provided it is the pool's uniform size (oversized one-offs just
        // free).
        if Rc::strong_count(&self.chunk) == 1 {
            if let Some(pool) = self.chunk.pool.upgrade() {
                if self.chunk.data.borrow().len() == pool.chunk_size {
                    pool.free.borrow_mut().push(Rc::clone(&self.chunk));
                }
            }
        }
    }
}

impl std::fmt::Debug for Buf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Buf(len={})", self.len)
    }
}

thread_local! {
    static SCRATCH_STACK: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// A reusable `Vec<u8>` borrowed from a thread-local stack; cleared (but
/// capacity kept) and returned on drop. Derefs to `Vec<u8>`.
pub struct Scratch {
    vec: Vec<u8>,
}

/// Takes a cleared scratch vector from the thread-local stack (or a fresh
/// one the first few times).
pub fn scratch() -> Scratch {
    let vec = SCRATCH_STACK.with(|s| s.borrow_mut().pop()).unwrap_or_default();
    Scratch { vec }
}

impl Scratch {
    /// Detaches the underlying vector (it will not return to the stack).
    pub fn into_vec(mut self) -> Vec<u8> {
        std::mem::take(&mut self.vec)
    }
}

impl Deref for Scratch {
    type Target = Vec<u8>;
    fn deref(&self) -> &Vec<u8> {
        &self.vec
    }
}

impl DerefMut for Scratch {
    fn deref_mut(&mut self) -> &mut Vec<u8> {
        &mut self.vec
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        if self.vec.capacity() == 0 {
            return; // taken by into_vec, or never grew
        }
        self.vec.clear();
        SCRATCH_STACK.with(|s| s.borrow_mut().push(std::mem::take(&mut self.vec)));
    }
}

/// A fixed-capacity, stack-allocated vector: the bounded scratch space the
/// batched verbs datapath drains completions into (`ibv_poll_cq` semantics —
/// "give me up to N"). Never touches the allocator.
pub struct ArrayVec<T, const N: usize> {
    items: [MaybeUninit<T>; N],
    len: usize,
}

impl<T, const N: usize> ArrayVec<T, N> {
    pub fn new() -> Self {
        ArrayVec {
            // SAFETY: an array of `MaybeUninit` needs no initialisation.
            items: unsafe { MaybeUninit::uninit().assume_init() },
            len: 0,
        }
    }

    pub const fn capacity(&self) -> usize {
        N
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn is_full(&self) -> bool {
        self.len == N
    }

    /// Appends `value`; returns it back if full.
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if self.len == N {
            return Err(value);
        }
        self.items[self.len].write(value);
        self.len += 1;
        Ok(())
    }

    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        self.len -= 1;
        // SAFETY: slot `len` was initialised by `push` and is now unowned.
        Some(unsafe { self.items[self.len].assume_init_read() })
    }

    pub fn clear(&mut self) {
        while self.pop().is_some() {}
    }

    pub fn as_slice(&self) -> &[T] {
        // SAFETY: the first `len` slots are initialised.
        unsafe { std::slice::from_raw_parts(self.items.as_ptr().cast::<T>(), self.len) }
    }

    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: the first `len` slots are initialised.
        unsafe { std::slice::from_raw_parts_mut(self.items.as_mut_ptr().cast::<T>(), self.len) }
    }

    /// Removes and returns all elements in order, front to back.
    pub fn drain(&mut self) -> ArrayVecDrain<'_, T, N> {
        ArrayVecDrain { av: self, at: 0 }
    }
}

impl<T, const N: usize> Default for ArrayVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> Deref for ArrayVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for ArrayVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T, const N: usize> Drop for ArrayVec<T, N> {
    fn drop(&mut self) {
        self.clear();
    }
}

/// Front-to-back draining iterator over an [`ArrayVec`].
pub struct ArrayVecDrain<'a, T, const N: usize> {
    av: &'a mut ArrayVec<T, N>,
    at: usize,
}

impl<T, const N: usize> Iterator for ArrayVecDrain<'_, T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        if self.at == self.av.len {
            return None;
        }
        // SAFETY: slot `at` is initialised and ownership moves out exactly
        // once; `Drop` below forgets the moved-out prefix.
        let v = unsafe { self.av.items[self.at].assume_init_read() };
        self.at += 1;
        Some(v)
    }
}

impl<T, const N: usize> Drop for ArrayVecDrain<'_, T, N> {
    fn drop(&mut self) {
        // Drop any elements not yet yielded, then mark the vec empty.
        while self.next().is_some() {}
        self.av.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunks_recycle_without_new_allocations() {
        let pool = Pool::new(64);
        for i in 0..100u8 {
            let b = pool.copy_in(&[i; 64]);
            b.with(|s| assert!(s.iter().all(|&x| x == i)));
        }
        // One chunk bounced in and out of the free list the whole time.
        assert_eq!(pool.allocated_chunks(), 1);
        assert_eq!(pool.recycled_chunks(), 99);
        assert_eq!(pool.free_chunks(), 1);
    }

    #[test]
    fn slices_share_the_chunk_and_defer_recycling() {
        let pool = Pool::new(32);
        let b = pool.copy_in(&[1, 2, 3, 4, 5, 6, 7, 8]);
        let tail = b.slice(4, 4);
        drop(b);
        assert_eq!(pool.free_chunks(), 0, "live slice pins the chunk");
        tail.with(|s| assert_eq!(s, &[5, 6, 7, 8]));
        drop(tail);
        assert_eq!(pool.free_chunks(), 1);
    }

    #[test]
    fn oversized_payloads_get_dedicated_chunks() {
        let pool = Pool::new(8);
        let b = pool.copy_in(&[9u8; 100]);
        assert_eq!(b.len(), 100);
        b.with(|s| assert_eq!(s.len(), 100));
        drop(b);
        assert_eq!(pool.free_chunks(), 0, "oversize chunks are not pooled");
        // A uniform-size handout still pools.
        drop(pool.copy_in(&[1u8; 8]));
        assert_eq!(pool.free_chunks(), 1);
    }

    #[test]
    fn copies_in_and_out_round_trip() {
        let pool = Pool::new(16);
        let b = pool.copy_in(b"hello world");
        let mut out = vec![0u8; b.len()];
        b.copy_to(&mut out);
        assert_eq!(&out, b"hello world");
        let mut acc = Vec::new();
        b.extend_into(&mut acc);
        b.extend_into(&mut acc);
        assert_eq!(acc.len(), 22);
        assert_eq!(b.to_vec(), b"hello world");
        assert_eq!(b.slice(6, 5).to_vec(), b"world");
    }

    #[test]
    fn scratch_keeps_capacity_across_uses() {
        let cap = {
            let mut s = scratch();
            s.extend_from_slice(&[0u8; 4096]);
            s.capacity()
        };
        let s = scratch();
        assert!(s.is_empty());
        assert!(s.capacity() >= cap, "capacity retained across uses");
        assert_eq!(s.capacity(), cap);
    }

    #[test]
    fn scratch_into_vec_detaches() {
        let mut s = scratch();
        s.extend_from_slice(b"keep me");
        let v = s.into_vec();
        assert_eq!(&v, b"keep me");
    }

    #[test]
    fn array_vec_push_pop_bounds() {
        let mut v: ArrayVec<u32, 3> = ArrayVec::new();
        assert!(v.is_empty());
        assert_eq!(v.capacity(), 3);
        v.push(1).unwrap();
        v.push(2).unwrap();
        v.push(3).unwrap();
        assert!(v.is_full());
        assert_eq!(v.push(4), Err(4));
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.pop(), Some(3));
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn array_vec_drain_is_fifo_and_resets() {
        let mut v: ArrayVec<String, 4> = ArrayVec::new();
        v.push("a".into()).unwrap();
        v.push("b".into()).unwrap();
        v.push("c".into()).unwrap();
        let drained: Vec<String> = v.drain().collect();
        assert_eq!(drained, ["a", "b", "c"]);
        assert!(v.is_empty());
        v.push("d".into()).unwrap();
        assert_eq!(v.as_slice(), ["d"]);
    }

    #[test]
    fn array_vec_partial_drain_drops_rest() {
        use std::rc::Rc;
        let marker = Rc::new(());
        let mut v: ArrayVec<Rc<()>, 4> = ArrayVec::new();
        for _ in 0..3 {
            v.push(Rc::clone(&marker)).unwrap();
        }
        let mut d = v.drain();
        let first = d.next().unwrap();
        drop(d); // remaining two dropped here
        drop(first);
        assert!(v.is_empty());
        assert_eq!(Rc::strong_count(&marker), 1, "no leaks");
    }
}
